// The storage & network chaos battery (ISSUE: end-to-end I/O fault
// injection).
//
// Storage: a fault-schedule matrix drives every injection point the spool
// touches (job.json journals, manifest.json flushes, .snp container staging)
// through every typed fault (ENOSPC, EIO, seeded short write, torn rename,
// failed fsync).  Transient faults must be absorbed by the retry envelopes
// with outputs BYTE-IDENTICAL to a no-fault serial run and the spool fsck
// clean afterwards; persistent faults must fail typed, survive a daemon
// restart, and complete once the storage heals — same byte-identity bar.
//
// Network: the LineServer's NetFaultPlan cuts replies mid-frame, stalls
// them, and byte-slices delivery; the resilient LineClient must absorb all
// of it through poll deadlines + jittered reconnect, and the server must
// bound request frames with a typed reject.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "src/common/error.hpp"
#include "src/common/fs_fault.hpp"
#include "src/core/genome_pipeline.hpp"
#include "src/core/run_manifest.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"
#include "src/service/daemon.hpp"
#include "src/service/fsck.hpp"
#include "src/service/protocol.hpp"
#include "src/service/socket.hpp"

namespace gsnp::service {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::vector<u8> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  GSNP_CHECK_MSG(in.good(), "cannot open " << path);
  return std::vector<u8>(std::istreambuf_iterator<char>(in), {});
}

// ---- storage chaos fixture --------------------------------------------------------

/// Two small chromosomes on disk, a no-fault serial baseline (digest +
/// output bytes), and an always-disarmed-on-exit guarantee for the global
/// injector.
class StorageChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fsfault::disarm();
    dir_ = fs::temp_directory_path() / "gsnp_chaos_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    for (int c = 0; c < 2; ++c) {
      genome::GenomeSpec gspec;
      gspec.name = "chr" + std::to_string(c + 1);
      gspec.length = 2'000 - 400 * static_cast<u64>(c);
      gspec.seed = 70 + static_cast<u64>(c);
      const genome::Reference ref = genome::generate_reference(gspec);
      genome::write_fasta_file(fasta(gspec.name), {ref});
      const genome::Diploid individual(ref, {});
      reads::ReadSimSpec rspec;
      rspec.depth = 3.0;
      rspec.seed = 80 + static_cast<u64>(c);
      reads::write_alignment_file(soap(gspec.name),
                                  reads::simulate_reads(individual, rspec));
      names_.push_back(gspec.name);
    }
    // The oracle: serial core::run_genome of the same spec, no faults.
    std::vector<genome::Reference> refs;
    core::GenomeRunConfig cfg;
    cfg.output_dir = dir_ / "baseline";
    cfg.window_size = 1'024;
    for (const std::string& name : names_) {
      refs.push_back(std::move(genome::read_fasta_file(fasta(name)).at(0)));
    }
    for (std::size_t i = 0; i < names_.size(); ++i) {
      core::ChromosomeJob job;
      job.name = names_[i];
      job.alignment_file = soap(names_[i]).string();
      job.reference = &refs[i];
      cfg.chromosomes.push_back(job);
    }
    device::Device dev;
    const core::GenomeReport report =
        core::run_genome(cfg, core::EngineKind::kGsnp, &dev);
    baseline_digest_ = core::manifest_digest(
        core::read_run_manifest(report.manifest_file));
    baseline_outputs_ = report.output_files;
  }
  void TearDown() override {
    fsfault::disarm();
    fs::remove_all(dir_);
  }

  fs::path fasta(const std::string& name) { return dir_ / (name + ".fa"); }
  fs::path soap(const std::string& name) { return dir_ / (name + ".soap"); }

  DaemonConfig daemon_config(const std::string& spool) {
    DaemonConfig config;
    config.spool_dir = dir_ / spool;
    config.workers = 1;  // deterministic write schedule per cell
    config.retry.max_attempts = 3;
    config.retry.backoff_seconds = 0.0;
    config.watchdog_interval_seconds = 0.005;
    return config;
  }

  JobSpec make_spec(const std::string& id) {
    JobSpec spec;
    spec.job_id = id;
    spec.engine = "gsnp";
    spec.window_size = 1'024;
    for (const std::string& name : names_) {
      ChromosomeSpec cs;
      cs.name = name;
      cs.alignment_file = soap(name).string();
      cs.reference_file = fasta(name).string();
      spec.chromosomes.push_back(cs);
    }
    return spec;
  }

  /// Acceptance bar for one spool: the job's digest and bytes equal the
  /// no-fault baseline, and fsck (after one repairing pass for crash
  /// litter) reports every job clean.
  void expect_matches_baseline(const JobStatus& status,
                               const fs::path& spool) {
    ASSERT_EQ(status.state, JobState::kDone) << status.error;
    EXPECT_EQ(status.manifest_digest, baseline_digest_);
    for (const fs::path& out : baseline_outputs_)
      EXPECT_EQ(read_bytes(status.output_dir / out.filename()),
                read_bytes(out))
          << out;
    FsckOptions repair;
    repair.repair = true;
    (void)fsck_spool(spool, repair);
    const FsckReport clean = fsck_spool(spool);
    EXPECT_TRUE(clean.all_clean()) << clean.summary();
  }

  fs::path dir_;
  std::vector<std::string> names_;
  std::string baseline_digest_;
  std::vector<fs::path> baseline_outputs_;
};

// ---- the fault-schedule matrix ----------------------------------------------------

struct MatrixCell {
  FsFaultKind kind;
  const char* filter;  ///< injection point (file class)
  i64 trigger_at;      ///< skip ops that would fail admission itself
};

TEST_F(StorageChaosTest, TransientFaultMatrixIsAbsorbedByteIdentical) {
  // Every injection point × every fault kind valid there, one transient
  // fault each (fault_count=1): the retry envelopes must absorb all of it.
  // job.json cells trigger at op 1 — op 0 is the admission journal, whose
  // failure is a typed *rejection* (its own test below), not an absorb.
  const MatrixCell cells[] = {
      {FsFaultKind::kEnospc, ".snp", 0},
      {FsFaultKind::kEio, ".snp", 0},
      {FsFaultKind::kShortWrite, ".snp", 0},
      {FsFaultKind::kEnospc, "manifest.json", 0},
      {FsFaultKind::kEio, "manifest.json", 0},
      {FsFaultKind::kShortWrite, "manifest.json", 0},
      {FsFaultKind::kEnospc, "job.json", 1},
      {FsFaultKind::kEio, "job.json", 1},
      {FsFaultKind::kShortWrite, "job.json", 1},
      {FsFaultKind::kFsyncFail, ".snp", 0},
      {FsFaultKind::kFsyncFail, "manifest.json", 0},
      {FsFaultKind::kFsyncFail, "job.json", 1},
      {FsFaultKind::kTornRename, ".snp", 0},
      {FsFaultKind::kTornRename, "manifest.json", 0},
  };

  int index = 0;
  for (const MatrixCell& cell : cells) {
    SCOPED_TRACE(std::string(fs_fault_kind_name(cell.kind)) + " on " +
                 cell.filter + " at " + std::to_string(cell.trigger_at));
    const std::string spool = "spool_" + std::to_string(index);
    const std::string job_id = "cell-" + std::to_string(index);
    ++index;

    FsFaultPlan plan;
    plan.kind = cell.kind;
    plan.trigger_at = cell.trigger_at;
    plan.fault_count = 1;
    plan.path_filter = cell.filter;
    plan.seed = 0xC0FFEE + static_cast<u64>(index);
    fsfault::arm(plan);

    JobStatus status;
    {
      Daemon daemon(daemon_config(spool));
      const std::string id = daemon.submit(make_spec(job_id));
      ASSERT_TRUE(daemon.wait_job(id, 120.0));
      status = daemon.status(id);
    }
    // The cell must actually have fired — a schedule that never triggers
    // would pass vacuously.
    EXPECT_GE(fsfault::injected(), 1u);
    fsfault::disarm();
    expect_matches_baseline(status, dir_ / spool);
  }
}

// ---- persistent faults: typed failure, then recovery ------------------------------

TEST_F(StorageChaosTest, PersistentAdmissionJournalFailureIsTypedRejection) {
  FsFaultPlan plan;
  plan.kind = FsFaultKind::kEnospc;
  plan.fault_count = -1;
  plan.path_filter = "job.json";
  fsfault::arm(plan);

  Daemon daemon(daemon_config("spool"));
  try {
    daemon.submit(make_spec("doomed"));
    FAIL() << "expected ServiceError";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kStorageFailure);
  }
  EXPECT_EQ(daemon.stats().rejected_storage, 1u);
  // The job was never admitted: no ghost state, no spool entry to recover.
  EXPECT_THROW(daemon.status("doomed"), ServiceError);

  // Storage heals: the same id admits and completes normally.
  fsfault::disarm();
  const std::string id = daemon.submit(make_spec("doomed"));
  ASSERT_TRUE(daemon.wait_job(id, 120.0));
  expect_matches_baseline(daemon.status(id), dir_ / "spool");
}

TEST_F(StorageChaosTest, PersistentOutputEioFailsTypedThenHealsAfterRestart) {
  FsFaultPlan plan;
  plan.kind = FsFaultKind::kEio;
  plan.fault_count = -1;
  plan.path_filter = ".snp";
  fsfault::arm(plan);

  {
    Daemon daemon(daemon_config("spool"));
    const std::string id = daemon.submit(make_spec("hard-luck"));
    ASSERT_TRUE(daemon.wait_job(id, 120.0));
    const JobStatus status = daemon.status(id);
    EXPECT_EQ(status.state, JobState::kFailed);
    EXPECT_NE(status.error.find("storage fault"), std::string::npos)
        << status.error;
  }
  EXPECT_GE(fsfault::injected(), 1u);
  fsfault::disarm();

  // Restart onto the same spool: recover scrubs the staging litter the
  // failed attempts left, keeps "hard-luck" as terminal history, and a
  // fresh submit completes to baseline bytes.
  Daemon daemon(daemon_config("spool"));
  EXPECT_EQ(daemon.recover(), 0u);
  EXPECT_EQ(daemon.status("hard-luck").state, JobState::kFailed);
  const std::string id = daemon.submit(make_spec("second-chance"));
  ASSERT_TRUE(daemon.wait_job(id, 120.0));
  expect_matches_baseline(daemon.status(id), dir_ / "spool");
}

TEST_F(StorageChaosTest, UnverifiableDoneJobDemotesAndRerunsOnRecover) {
  // Every manifest flush tears at the rename: the job still finishes (the
  // daemon tolerates manifest-flush failures — entries are journaled in
  // memory and rebuilt), but its on-disk manifest is missing, so its "done"
  // claim cannot be verified.  fsck must demote it and recover() rerun it.
  FsFaultPlan plan;
  plan.kind = FsFaultKind::kTornRename;
  plan.fault_count = -1;
  plan.path_filter = "manifest.json";
  fsfault::arm(plan);

  {
    Daemon daemon(daemon_config("spool"));
    const std::string id = daemon.submit(make_spec("limping"));
    ASSERT_TRUE(daemon.wait_job(id, 120.0));
    EXPECT_EQ(daemon.status(id).state, JobState::kDone);
    EXPECT_GT(daemon.stats().manifest_write_failures, 0u);
  }
  fsfault::disarm();
  EXPECT_FALSE(fs::exists(dir_ / "spool" / "jobs" / "limping" /
                          "manifest.json"));

  Daemon daemon(daemon_config("spool"));
  EXPECT_EQ(daemon.recover(), 1u);  // demoted by fsck, then resumed
  // Worst-of verdict: besides the unverifiable "done" claim the torn renames
  // left `manifest.json.part` staging residue, so the job reports
  // torn_staging (severity above resumable) before repair.
  EXPECT_EQ(daemon.last_fsck().count(FsckVerdict::kTornStaging), 1u)
      << daemon.last_fsck().summary();
  ASSERT_TRUE(daemon.wait_job("limping", 120.0));
  const JobStatus status = daemon.status("limping");
  EXPECT_TRUE(status.resumed);
  expect_matches_baseline(status, dir_ / "spool");
}

TEST_F(StorageChaosTest, CrashDuringChaosRecoversToBaseline) {
  // Transient manifest fault + a hard crash: chr1 completes but its manifest
  // flush hits ENOSPC (tolerated, entry unjournaled), then the "process"
  // dies at chr2's post_publish — both outputs published, nothing recorded.
  // Daemon B's recover (fsck first) must still converge to the exact
  // baseline bytes.
  FsFaultPlan plan;
  plan.kind = FsFaultKind::kEnospc;
  plan.fault_count = 1;
  plan.path_filter = "manifest.json";
  fsfault::arm(plan);
  {
    DaemonConfig config = daemon_config("spool");
    std::atomic<Daemon*> self{nullptr};
    config.checkpoint_hook = [&self](std::string_view point,
                                     const std::string&,
                                     const std::string& chromosome) {
      if (point == "post_publish" && chromosome == "chr2") {
        self.load()->simulate_crash();
        throw Error("injected crash at post_publish");
      }
    };
    Daemon daemon(config);
    self.store(&daemon);
    ASSERT_EQ(daemon.submit(make_spec("phoenix")), "phoenix");
    daemon.wait_idle();
  }
  EXPECT_GE(fsfault::injected(), 1u);  // the manifest fault really fired
  fsfault::disarm();

  Daemon daemon(daemon_config("spool"));
  EXPECT_EQ(daemon.recover(), 1u);
  ASSERT_TRUE(daemon.wait_job("phoenix", 120.0));
  const JobStatus status = daemon.status("phoenix");
  EXPECT_TRUE(status.resumed);
  expect_matches_baseline(status, dir_ / "spool");
}

// ---- network chaos ----------------------------------------------------------------

/// Echo server under a chosen ServerOptions; skips the test when the sandbox
/// cannot bind AF_UNIX sockets (same loud-skip convention as test_service).
class NetChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_netchaos_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    server_.reset();
    fs::remove_all(dir_);
  }

  void start_server(ServerOptions options) {
    try {
      server_ = std::make_unique<LineServer>(
          dir_ / "chaos.sock",
          [](const std::string& line) { return "echo:" + line; }, options);
    } catch (const Error& e) {
      GTEST_SKIP() << "SKIPPED — cannot bind AF_UNIX socket: " << e.what();
    }
  }

  ClientOptions resilient(int attempts, double timeout_seconds) {
    ClientOptions options;
    options.retry.max_attempts = attempts;
    options.retry.backoff_seconds = 0.01;
    options.retry.jitter_fraction = 0.5;
    options.op_timeout_seconds = timeout_seconds;
    return options;
  }

  fs::path socket() const { return dir_ / "chaos.sock"; }

  fs::path dir_;
  std::unique_ptr<LineServer> server_;
};

TEST_F(NetChaosTest, OversizedFrameGetsTypedRejectAndClose) {
  ServerOptions options;
  options.max_frame_bytes = 256;
  start_server(options);
  if (server_ == nullptr) return;  // skipped

  LineClient client(socket());
  const Response reject =
      parse_response(client.request(std::string(4'096, 'x')));
  EXPECT_FALSE(reject.ok);
  EXPECT_EQ(reject.error, ErrorCode::kFrameTooLarge);
  // Framing is unrecoverable: the server hung up after the reject.
  EXPECT_THROW(client.request("hello"), Error);

  // A new, well-behaved connection is unaffected.
  LineClient fresh(socket());
  EXPECT_EQ(fresh.request("hello"), "echo:hello");
}

TEST_F(NetChaosTest, ClientBoundsReplyBuffering) {
  start_server(ServerOptions{});
  if (server_ == nullptr) return;  // skipped

  ClientOptions options = resilient(1, 5.0);
  options.max_frame_bytes = 64;
  LineClient client(socket(), options);
  try {
    client.request(std::string(500, 'y'));  // echo comes back > 64 bytes
    FAIL() << "expected frame-cap failure";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("frame cap"), std::string::npos)
        << e.what();
  }
}

TEST_F(NetChaosTest, MidFrameDisconnectIsAbsorbedByReconnect) {
  ServerOptions options;
  options.chaos.disconnect_at = 1;  // cut the second reply halfway
  start_server(options);
  if (server_ == nullptr) return;  // skipped

  LineClient client(socket(), resilient(3, 5.0));
  EXPECT_EQ(client.request("alpha"), "echo:alpha");
  EXPECT_EQ(client.connects(), 1u);
  // Reply #1 arrives torn + EOF; the client must discard the fragment,
  // reconnect with backoff, resend, and get the full reply (#2).
  EXPECT_EQ(client.request("bravo"), "echo:bravo");
  EXPECT_EQ(client.connects(), 2u);
}

TEST_F(NetChaosTest, ByteSlicedDeliveryStillParses) {
  ServerOptions options;
  options.chaos.byte_sliced = true;  // worst-case fragmentation, every reply
  start_server(options);
  if (server_ == nullptr) return;  // skipped

  LineClient client(socket(), resilient(2, 5.0));
  for (const char* word : {"one", "two", "three"})
    EXPECT_EQ(client.request(word), std::string("echo:") + word);
  EXPECT_EQ(client.connects(), 1u);  // no reconnects needed, just patience
}

TEST_F(NetChaosTest, StalledReplyHitsDeadlineThenRecovers) {
  ServerOptions options;
  options.chaos.stall_at = 0;
  options.chaos.stall_seconds = 1.0;  // far past the client's 0.1s deadline
  start_server(options);
  if (server_ == nullptr) return;  // skipped

  LineClient client(socket(), resilient(3, 0.1));
  // Attempt 1 times out against the stalled reply; attempt 2 (reply #1,
  // not stalled) succeeds.  Total wall-clock stays bounded by the deadline,
  // not the stall.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(client.request("urgent"), "echo:urgent");
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(client.connects(), 2u);
  EXPECT_LT(elapsed, 1.0);  // never waited out the full stall
}

TEST_F(NetChaosTest, IdleConnectionsAreDroppedAndReconnectHeals) {
  ServerOptions options;
  options.idle_timeout_seconds = 0.05;
  start_server(options);
  if (server_ == nullptr) return;  // skipped

  LineClient client(socket(), resilient(3, 5.0));
  EXPECT_EQ(client.request("warm"), "echo:warm");
  std::this_thread::sleep_for(300ms);  // server drops the silent peer
  EXPECT_EQ(client.request("back"), "echo:back");
  EXPECT_EQ(client.connects(), 2u);  // healed through one reconnect
}

}  // namespace
}  // namespace gsnp::service
