// fuzz_smoke: the deterministic-fuzzing gate for the hardened ingest layer.
//
// Feeds seeded mutations of well-formed SOAP/SAM input (reads/fuzz.hpp)
// through the lenient readers and the engines, asserting the contracts the
// robustness work guarantees:
//  * lenient ingest never crashes, whatever the mutation (run under
//    ASan/UBSan by scripts/verify.sh),
//  * skips are deterministic: lenient calls over a fuzzed file are
//    bit-identical to strict calls over just the surviving records,
//  * the error budget aborts runaway-garbage inputs,
//  * the quarantine sidecar and the run-manifest ingest stats record every
//    skip with its reason,
//  * the checked-in corpus (tests/corpus/ingest) pins each reason code.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/error.hpp"
#include "src/core/consistency.hpp"
#include "src/core/engine.hpp"
#include "src/core/genome_pipeline.hpp"
#include "src/core/run_manifest.hpp"
#include "src/genome/dbsnp.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/fuzz.hpp"
#include "src/reads/sam.hpp"
#include "src/reads/simulator.hpp"

namespace gsnp {
namespace {

namespace fs = std::filesystem;

class FuzzSmoke : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_fuzz_smoke";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    genome::GenomeSpec gspec;
    gspec.name = "chrF";
    gspec.length = 20'000;
    ref_ = genome::generate_reference(gspec);
    genome::SnpPlantSpec pspec;
    const auto snps = genome::plant_snps(ref_, pspec);
    const genome::Diploid individual(ref_, snps);
    reads::ReadSimSpec rspec;
    rspec.depth = 6.0;
    records_ = reads::simulate_reads(individual, rspec);
    reads::write_alignment_file(dir_ / "align.soap", records_);
    reads::write_sam_file(dir_ / "align.sam", records_, ref_.name(),
                          ref_.size());
  }
  void TearDown() override { fs::remove_all(dir_); }

  IngestPolicy lenient(const fs::path& quarantine = {}) const {
    IngestPolicy p = IngestPolicy::make_lenient(quarantine);
    return p;
  }

  /// Lenient with the error budget disabled, for drains that must reach EOF
  /// no matter how corrupt the file is (a budget abort is a *valid* outcome
  /// of heavy fuzzing — one swapped field can install a junk chromosome name
  /// and cascade every later record into a sort violation).
  IngestPolicy unlimited_lenient() const {
    IngestPolicy p = IngestPolicy::make_lenient();
    p.max_bad_records = ~u64{0};
    p.max_bad_fraction = 1.0;
    return p;
  }

  fs::path dir_;
  genome::Reference ref_;
  std::vector<reads::AlignmentRecord> records_;
};

TEST_F(FuzzSmoke, LenientSoapIngestNeverCrashesAcrossSeeds) {
  for (u64 seed = 1; seed <= 6; ++seed) {
    reads::FuzzOptions options;
    options.seed = seed;
    options.rate = 0.25;
    const fs::path fuzzed = dir_ / ("fuzz" + std::to_string(seed) + ".soap");
    const auto report = reads::fuzz_file(dir_ / "align.soap", fuzzed, options);
    ASSERT_GT(report.mutated, 0u) << "seed " << seed;

    reads::AlignmentReader reader(fuzzed, unlimited_lenient(), ref_.size());
    u64 survivors = 0;
    while (reader.next()) ++survivors;
    const IngestStats& stats = reader.stats();
    EXPECT_EQ(stats.records_ok, survivors);
    // Every record line was either accepted or quarantined; nothing vanished.
    EXPECT_EQ(stats.records_ok + stats.records_quarantined, stats.total());
    EXPECT_LE(survivors, records_.size());
  }
}

TEST_F(FuzzSmoke, LenientSamIngestNeverCrashesAcrossSeeds) {
  for (u64 seed = 1; seed <= 6; ++seed) {
    reads::FuzzOptions options;
    options.seed = seed;
    options.rate = 0.25;
    const fs::path fuzzed = dir_ / ("fuzz" + std::to_string(seed) + ".sam");
    reads::fuzz_file(dir_ / "align.sam", fuzzed, options);

    reads::SamReader reader(fuzzed, unlimited_lenient());
    u64 survivors = 0;
    while (reader.next()) ++survivors;
    EXPECT_EQ(reader.stats().records_ok, survivors);
    EXPECT_LE(survivors, records_.size());
  }
}

TEST_F(FuzzSmoke, FuzzerIsDeterministic) {
  reads::FuzzOptions options;
  options.seed = 42;
  options.rate = 0.3;
  const auto r1 = reads::fuzz_file(dir_ / "align.soap", dir_ / "a.soap",
                                   options);
  const auto r2 = reads::fuzz_file(dir_ / "align.soap", dir_ / "b.soap",
                                   options);
  EXPECT_EQ(r1.mutated, r2.mutated);
  EXPECT_EQ(r1.by_kind, r2.by_kind);
  const auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  EXPECT_EQ(slurp(dir_ / "a.soap"), slurp(dir_ / "b.soap"));

  options.seed = 43;
  reads::fuzz_file(dir_ / "align.soap", dir_ / "c.soap", options);
  EXPECT_NE(slurp(dir_ / "a.soap"), slurp(dir_ / "c.soap"));
}

TEST_F(FuzzSmoke, LenientCallsMatchStrictCallsOnSurvivors) {
  // The acceptance property: a lenient engine run over fuzzed input produces
  // bit-identical calls to a strict run over just the surviving records.
  reads::FuzzOptions options;
  options.seed = 7;
  options.rate = 0.15;
  const fs::path fuzzed = dir_ / "fuzzed.soap";
  reads::fuzz_file(dir_ / "align.soap", fuzzed, options);

  // Collect the survivors with a lenient reader and re-write them clean.
  std::vector<reads::AlignmentRecord> survivors;
  {
    reads::AlignmentReader reader(fuzzed, lenient(), ref_.size());
    while (auto rec = reader.next()) survivors.push_back(std::move(*rec));
    ASSERT_GT(reader.stats().records_quarantined, 0u);
  }
  ASSERT_FALSE(survivors.empty());
  reads::write_alignment_file(dir_ / "survivors.soap", survivors);

  core::EngineConfig config;
  config.reference = &ref_;
  config.temp_file = dir_ / "t.tmp";

  config.alignment_file = fuzzed;
  config.output_file = dir_ / "lenient.snp";
  config.ingest = lenient(dir_ / "lenient.quarantine.txt");
  const core::RunReport lenient_report = core::run_gsnp_cpu(config);

  config.alignment_file = dir_ / "survivors.soap";
  config.output_file = dir_ / "strict.snp";
  config.ingest = IngestPolicy::make_strict();
  const core::RunReport strict_report = core::run_gsnp_cpu(config);

  EXPECT_EQ(lenient_report.records, strict_report.records);
  EXPECT_EQ(lenient_report.records, survivors.size());
  EXPECT_GT(lenient_report.ingest.records_quarantined, 0u);
  EXPECT_TRUE(strict_report.ingest.clean());
  const auto cmp =
      core::compare_output_files(dir_ / "lenient.snp", dir_ / "strict.snp");
  EXPECT_TRUE(cmp.identical) << cmp.detail;

  // The SOAPsnp engine reads the text twice (cal_p + window pass); its
  // lenient skips must be identical too.
  config.alignment_file = fuzzed;
  config.output_file = dir_ / "lenient_soapsnp.txt";
  config.ingest = lenient(dir_ / "soapsnp.quarantine.txt");
  const core::RunReport soapsnp_report = core::run_soapsnp(config);
  EXPECT_EQ(soapsnp_report.records, survivors.size());
  EXPECT_EQ(soapsnp_report.ingest.records_quarantined,
            lenient_report.ingest.records_quarantined);
}

TEST_F(FuzzSmoke, ErrorBudgetAbortsRunawayGarbage) {
  const fs::path bad = dir_ / "garbage.soap";
  {
    std::ofstream out(bad);
    for (int i = 0; i < 20; ++i) out << "not\ta\tvalid\trecord\n";
  }
  IngestPolicy policy = lenient();
  policy.max_bad_records = 5;
  reads::AlignmentReader reader(bad, policy);
  EXPECT_THROW(while (reader.next()) {}, Error);
  EXPECT_EQ(reader.stats().records_quarantined, 6u);  // 5 allowed + the fatal

  // The fractional budget trips even under the absolute cap.
  IngestPolicy frac = lenient();
  frac.max_bad_fraction = 0.25;
  frac.fraction_grace_records = 10;
  reads::AlignmentReader frac_reader(bad, frac);
  EXPECT_THROW(while (frac_reader.next()) {}, Error);
}

TEST_F(FuzzSmoke, QuarantineFileRecordsReasonAndLine) {
  const fs::path bad = dir_ / "two_bad.soap";
  {
    std::ofstream out(bad);
    out << "r1\tACGTA\tIIIII\t1\ta\t5\t+\tchrQ\t100\n";
    out << "r2\tACGTA\tIIIII\tnope\ta\t5\t+\tchrQ\t150\n";  // bad_integer
    out << "r3\tACGTA\tIIIII\t1\ta\t5\t+\tchrQ\t0\n";  // position_out_of_range
  }
  const fs::path qpath = dir_ / "q.txt";
  reads::AlignmentReader reader(bad, lenient(qpath));
  u64 ok = 0;
  while (reader.next()) ++ok;
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(reader.stats().records_quarantined, 2u);
  EXPECT_EQ(reader.stats().by_reason[static_cast<std::size_t>(
                IngestReason::kBadInteger)],
            1u);
  EXPECT_EQ(reader.stats().by_reason[static_cast<std::size_t>(
                IngestReason::kPositionOutOfRange)],
            1u);

  std::ifstream in(qpath);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line.rfind("#GSNP-QUARANTINE", 0), 0u) << line;
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("bad_integer"), std::string::npos);
  EXPECT_NE(contents.find("position_out_of_range"), std::string::npos);
  EXPECT_NE(contents.find("nope"), std::string::npos)  // the original line
      << contents;
}

TEST_F(FuzzSmoke, StrictModeAbortPinpointsFileLineReason) {
  const fs::path bad = dir_ / "strict.soap";
  {
    std::ofstream out(bad);
    out << "r1\tACGTA\tIIIII\t1\ta\t5\t+\tchrQ\t100\n";
    out << "r2\tACGTA\tIIIII\t1\ta\t5\t?\tchrQ\t150\n";  // bad strand
  }
  reads::AlignmentReader reader(bad);
  EXPECT_TRUE(reader.next().has_value());
  try {
    reader.next();
    ADD_FAILURE() << "no ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.file(), bad.string());
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.reason(), IngestReason::kBadField);
    const std::string what = e.what();
    EXPECT_NE(what.find(bad.string()), std::string::npos) << what;
    EXPECT_NE(what.find(":2:"), std::string::npos) << what;
    EXPECT_NE(what.find("strand"), std::string::npos) << what;
  }
}

TEST_F(FuzzSmoke, CorpusRegression) {
  // Every checked-in corpus file: ok_* parse cleanly under strict; all others
  // throw ParseError under strict; every file is safe under lenient.
  const fs::path corpus = fs::path(GSNP_TEST_CORPUS_DIR) / "ingest";
  ASSERT_TRUE(fs::exists(corpus)) << corpus;
  u64 seen = 0;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    const fs::path& p = entry.path();
    const bool sam = p.extension() == ".sam";
    const bool expect_ok = p.filename().string().rfind("ok_", 0) == 0;
    ++seen;

    const auto drain = [&](const IngestPolicy& policy) {
      u64 n = 0;
      if (sam) {
        reads::SamReader reader(p, policy);
        while (reader.next()) ++n;
      } else {
        reads::AlignmentReader reader(p, policy);
        while (reader.next()) ++n;
      }
      return n;
    };

    if (expect_ok) {
      EXPECT_GT(drain(IngestPolicy::make_strict()), 0u) << p;
    } else {
      EXPECT_THROW(drain(IngestPolicy::make_strict()), ParseError) << p;
    }
    drain(IngestPolicy::make_lenient());  // must not crash or throw
  }
  EXPECT_GE(seen, 10u);
}

TEST_F(FuzzSmoke, GenomeRunRecordsIngestStatsInManifestAndResume) {
  // Two chromosomes, the second with fuzzed (partially corrupt) input: the
  // lenient whole-genome run completes, the manifest carries per-reason
  // quarantine counts, the default quarantine sidecar appears, and a resumed
  // run restores the same stats without re-reading the inputs.
  genome::GenomeSpec gspec2;
  gspec2.name = "chrG";
  gspec2.length = 15'000;
  gspec2.seed = 99;
  const genome::Reference ref2 = genome::generate_reference(gspec2);
  genome::SnpPlantSpec pspec;
  const auto snps2 = genome::plant_snps(ref2, pspec);
  const genome::Diploid individual2(ref2, snps2);
  reads::ReadSimSpec rspec;
  rspec.depth = 6.0;
  rspec.seed = 99;
  const auto records2 = reads::simulate_reads(individual2, rspec);
  reads::write_alignment_file(dir_ / "chrG.soap", records2);

  reads::FuzzOptions options;
  options.seed = 11;
  options.rate = 0.2;
  reads::fuzz_file(dir_ / "chrG.soap", dir_ / "chrG.fuzzed.soap", options);

  core::GenomeRunConfig config;
  config.output_dir = dir_ / "genome_out";
  config.ingest = IngestPolicy::make_lenient();  // per-chr default sidecar
  config.chromosomes = {
      {"chrF", dir_ / "align.soap", &ref_, nullptr},
      {"chrG", dir_ / "chrG.fuzzed.soap", &ref2, nullptr},
  };
  const core::GenomeReport report =
      core::run_genome(config, core::EngineKind::kGsnpCpu);
  ASSERT_EQ(report.statuses.size(), 2u);
  EXPECT_TRUE(report.statuses[0].ingest.clean());
  EXPECT_GT(report.statuses[1].ingest.records_quarantined, 0u);
  EXPECT_EQ(report.total_ingest.records_quarantined,
            report.statuses[1].ingest.records_quarantined);
  EXPECT_TRUE(fs::exists(config.output_dir / "chrG.quarantine.txt"));

  const core::RunManifest manifest =
      core::read_run_manifest(report.manifest_file);
  ASSERT_EQ(manifest.chromosomes.size(), 2u);
  EXPECT_EQ(manifest.chromosomes[1].ingest.records_quarantined,
            report.statuses[1].ingest.records_quarantined);
  EXPECT_EQ(manifest.chromosomes[1].ingest.by_reason,
            report.statuses[1].ingest.by_reason);

  // Resume: both chromosomes verify, nothing re-runs, stats are restored.
  config.resume = true;
  const core::GenomeReport resumed =
      core::run_genome(config, core::EngineKind::kGsnpCpu);
  ASSERT_EQ(resumed.statuses.size(), 2u);
  EXPECT_TRUE(resumed.statuses[0].resumed);
  EXPECT_TRUE(resumed.statuses[1].resumed);
  EXPECT_EQ(resumed.statuses[1].ingest.records_quarantined,
            report.statuses[1].ingest.records_quarantined);
  EXPECT_EQ(resumed.total_ingest.records_quarantined,
            report.total_ingest.records_quarantined);
}

TEST_F(FuzzSmoke, ManifestWithoutIngestFieldsStillReads) {
  // Backward compatibility: a manifest written before the ingest fields
  // existed parses with all-zero stats.
  const fs::path path = dir_ / "old_manifest.json";
  {
    std::ofstream out(path);
    out << R"({"version": 1, "engine": "gsnp_cpu", "chromosomes": [
      {"name": "chr1", "status": "done", "requested": "gsnp_cpu",
       "engine": "gsnp_cpu", "degraded": false, "attempts": 1,
       "output": "chr1.gsnp_cpu.snp", "output_bytes": 10,
       "output_crc32": 1234, "sites": 100, "error": ""}]})";
  }
  const core::RunManifest manifest = core::read_run_manifest(path);
  ASSERT_EQ(manifest.chromosomes.size(), 1u);
  EXPECT_TRUE(manifest.chromosomes[0].ingest.clean());
  EXPECT_EQ(manifest.chromosomes[0].ingest.records_ok, 0u);
}

TEST_F(FuzzSmoke, DbsnpLenientSkipsAndCounts) {
  std::istringstream in(
      "# seq pos freqA freqC freqG freqT validated\n"
      "chrD\t10\t0.9\t0.1\t0\t0\t1\n"
      "chrD\t20\t0.9\tNaN\t0\t0\t1\n"    // non-finite frequency
      "chrD\t5\t0.9\t0.1\t0\t0\t1\n"     // sort violation (5 < accepted 10)
      "chrD\t30\t0.9\t0.1\t0\t0\t1\n");
  IngestStats stats;
  const auto table =
      genome::read_dbsnp(in, "<test>", IngestPolicy::make_lenient(), &stats);
  EXPECT_EQ(table.entries().size(), 2u);
  EXPECT_EQ(stats.records_quarantined, 2u);
  EXPECT_EQ(stats.by_reason[static_cast<std::size_t>(IngestReason::kBadField)],
            1u);
  EXPECT_EQ(stats.by_reason[static_cast<std::size_t>(
                IngestReason::kSortOrderViolation)],
            1u);

  std::istringstream strict_in("chrD\tzzz\t0.9\t0.1\t0\t0\t1\n");
  EXPECT_THROW(genome::read_dbsnp(strict_in), ParseError);
}

TEST_F(FuzzSmoke, FastaStaysStrictWithTaxonomy) {
  // FASTA is the coordinate system: always strict, with reason codes.
  std::istringstream headerless("ACGT\n");
  try {
    genome::read_fasta(headerless, "<t>");
    ADD_FAILURE() << "no ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.reason(), IngestReason::kBadHeader);
  }
  std::istringstream junk(">chr1\nAC1T\n");
  try {
    genome::read_fasta(junk, "<t>");
    ADD_FAILURE() << "no ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.reason(), IngestReason::kBadField);
  }
}

}  // namespace
}  // namespace gsnp
