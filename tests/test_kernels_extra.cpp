// Targeted device-kernel tests beyond the random-property suites: the
// dep_count tag trick under adversarial duplicate patterns, the dictionary
// kernel's constant-memory fallback, and device reuse across windows.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.hpp"
#include "src/compress/device_rledict.hpp"
#include "src/core/kernels.hpp"
#include "src/core/likelihood.hpp"

namespace gsnp::core {
namespace {

class KernelsExtra : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pm_ = new PMatrix(finalize_p_matrix(PMatrixCounter{}));
    npm_ = new NewPMatrix(*pm_);
  }
  static void TearDownTestSuite() {
    delete pm_;
    delete npm_;
  }
  static PMatrix* pm_;
  static NewPMatrix* npm_;
};

PMatrix* KernelsExtra::pm_ = nullptr;
NewPMatrix* KernelsExtra::npm_ = nullptr;

TEST_F(KernelsExtra, DepCountResetsAcrossBaseChanges) {
  // Adversarial pattern for the tag trick: the SAME (strand, coord) cell is
  // hit repeatedly under each of the four bases, with duplicates.  A buggy
  // reset would leak counts from base b into base b+1.
  std::vector<u32> words;
  for (u8 base = 0; base < kNumBases; ++base) {
    for (int rep = 0; rep < 3; ++rep) {
      AlignedBase ab;
      ab.base = base;
      ab.quality = 40;
      ab.coord = 7;
      ab.strand = Strand::kForward;
      words.push_back(base_word_pack(ab));
      ab.strand = Strand::kReverse;
      words.push_back(base_word_pack(ab));
    }
  }
  std::sort(words.begin(), words.end());

  const TypeLikely cpu = likelihood_sparse_site(words, *npm_);

  device::Device dev;
  const DeviceScoreTables tables(dev, *pm_, *npm_);
  BaseWordWindow window(1);
  window.words = words;
  window.offsets = {0, words.size()};
  const auto gpu = device_likelihood_sparse(dev, window, tables);
  for (int g = 0; g < kNumGenotypes; ++g) ASSERT_EQ(gpu[0][g], cpu[g]);
}

TEST_F(KernelsExtra, DepCountIsolatedBetweenSites) {
  // Two sites with identical words: per-site dep state must not leak.
  AlignedBase ab;
  ab.base = 1;
  ab.quality = 35;
  ab.coord = 3;
  ab.strand = Strand::kForward;
  const u32 w = base_word_pack(ab);

  BaseWordWindow window(2);
  window.words = {w, w, w, w};  // two duplicates per site
  window.offsets = {0, 2, 4};

  device::Device dev;
  const DeviceScoreTables tables(dev, *pm_, *npm_);
  const auto result = device_likelihood_sparse(dev, window, tables);
  const TypeLikely expected =
      likelihood_sparse_site(std::span<const u32>(window.words.data(), 2),
                             *npm_);
  for (int g = 0; g < kNumGenotypes; ++g) {
    ASSERT_EQ(result[0][g], expected[g]);
    ASSERT_EQ(result[1][g], expected[g]);  // identical input -> identical out
  }
}

TEST_F(KernelsExtra, DeviceReuseAcrossWindowsAccumulatesCounters) {
  device::Device dev;
  const DeviceScoreTables tables(dev, *pm_, *npm_);
  Rng rng(5);
  BaseWordWindow window(16);
  window.offsets = {0};
  for (int s = 0; s < 16; ++s) {
    for (int k = 0; k < 5; ++k) {
      AlignedBase ab;
      ab.base = static_cast<u8>(rng.uniform(4));
      ab.quality = static_cast<u8>(rng.uniform(64));
      ab.coord = static_cast<u16>(rng.uniform(100));
      ab.strand = static_cast<Strand>(rng.uniform(2));
      window.words.push_back(base_word_pack(ab));
    }
    window.offsets.push_back(window.words.size());
  }
  likelihood_sort_cpu(window);

  const auto first = device_likelihood_sparse(dev, window, tables);
  const u64 launches_after_one = dev.counters().kernel_launches;
  const auto second = device_likelihood_sparse(dev, window, tables);
  EXPECT_EQ(first, second);  // deterministic across runs on one device
  EXPECT_GT(dev.counters().kernel_launches, launches_after_one);
  // Per-window buffers are released: allocation returns to tables only.
  EXPECT_EQ(dev.allocated_bytes(),
            tables.p_matrix().bytes() + tables.new_p_matrix().bytes());
}

TEST(DeviceDict, FallsBackToGlobalMemoryForLargeDictionaries) {
  // > constant_bytes/2 / 4 = 8192 distinct values forces the global path.
  std::vector<u32> column(20'000);
  for (std::size_t i = 0; i < column.size(); ++i)
    column[i] = static_cast<u32>(i * 3 + (i % 7));
  device::Device dev;
  const auto m = compress::device_build_dict(dev, column);
  EXPECT_GT(m.dict.size(), 8192u);
  for (std::size_t i = 0; i < column.size(); ++i)
    ASSERT_EQ(m.dict[m.indices[i]], column[i]);
  // No lingering constant-memory reservation either way.
  EXPECT_EQ(dev.constant_bytes_used(), 0u);
}

TEST(DeviceDict, SingleValueColumn) {
  std::vector<u32> column(100, 42);
  device::Device dev;
  const auto m = compress::device_build_dict(dev, column);
  ASSERT_EQ(m.dict.size(), 1u);
  for (const u32 idx : m.indices) EXPECT_EQ(idx, 0u);
}

TEST_F(KernelsExtra, PosteriorKernelHandlesKnownSitePriors) {
  const PriorParams params;
  genome::KnownSnpEntry known;
  known.freq = {0.4, 0.0, 0.6, 0.0};
  known.validated = true;

  std::vector<TypeLikely> tls(8, TypeLikely{});
  std::vector<GenotypePriors> priors;
  for (int i = 0; i < 8; ++i)
    priors.push_back(genotype_log_priors(static_cast<u8>(i % 4),
                                         i % 2 ? &known : nullptr, params));
  device::Device dev;
  const auto calls = device_posterior(dev, tls, priors);
  for (int i = 0; i < 8; ++i) {
    const PosteriorCall expected = select_genotype(priors[i], tls[i]);
    EXPECT_EQ(calls[i].best, expected.best) << i;
    EXPECT_EQ(calls[i].quality, expected.quality) << i;
  }
}

}  // namespace
}  // namespace gsnp::core
