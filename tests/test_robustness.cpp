// Robustness and failure-injection tests: corrupted/truncated binary files
// must raise gsnp::Error (never crash or return garbage silently), and the
// pipeline must survive degenerate datasets.  Plus a randomized end-to-end
// consistency fuzz across dataset shapes.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/compress/temp_input.hpp"
#include "src/core/consistency.hpp"
#include "src/core/engine.hpp"
#include "src/core/output_codec.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"

namespace gsnp::core {
namespace {

namespace fs = std::filesystem;

std::vector<u8> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<u8>(std::istreambuf_iterator<char>(in), {});
}

void write_bytes(const fs::path& path, std::span<const u8> bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// A small compressed output file to corrupt.
class CorruptionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_robust_test";
    fs::create_directories(dir_);
    genome::GenomeSpec gspec;
    gspec.name = "chrR";
    gspec.length = 5'000;
    ref_ = genome::generate_reference(gspec);
    const genome::Diploid individual(ref_, {});
    reads::ReadSimSpec rspec;
    rspec.depth = 5.0;
    records_ = reads::simulate_reads(individual, rspec);
    reads::write_alignment_file(dir_ / "a.soap", records_);

    EngineConfig config;
    config.alignment_file = dir_ / "a.soap";
    config.reference = &ref_;
    config.temp_file = dir_ / "a.tmp";
    config.output_file = dir_ / "out.snp";
    config.window_size = 1'024;
    run_gsnp_cpu(config);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  genome::Reference ref_;
  std::vector<reads::AlignmentRecord> records_;
};

TEST_F(CorruptionFixture, TruncatedOutputRaises) {
  auto bytes = read_bytes(dir_ / "out.snp");
  for (const double fraction : {0.25, 0.5, 0.9, 0.99}) {
    std::vector<u8> cut(bytes.begin(),
                        bytes.begin() + static_cast<std::ptrdiff_t>(
                                            fraction * bytes.size()));
    write_bytes(dir_ / "cut.snp", cut);
    std::string name;
    EXPECT_THROW(read_snp_compressed_file(dir_ / "cut.snp", name), Error)
        << "fraction " << fraction;
  }
}

TEST_F(CorruptionFixture, BitflippedOutputNeverCrashes) {
  // Any single-byte corruption must either decode to *something* or raise
  // gsnp::Error — never crash.  (Bit flips inside a varint length can make a
  // frame look shorter/longer; decoders bounds-check everything.)
  const auto original = read_bytes(dir_ / "out.snp");
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    auto bytes = original;
    const std::size_t at = 16 + rng.uniform(bytes.size() - 16);
    bytes[at] ^= static_cast<u8>(1 + rng.uniform(255));
    write_bytes(dir_ / "flip.snp", bytes);
    std::string name;
    try {
      (void)read_snp_compressed_file(dir_ / "flip.snp", name);
    } catch (const Error&) {
      // acceptable
    }
  }
  SUCCEED();
}

TEST_F(CorruptionFixture, TruncatedTempInputRaises) {
  const auto bytes = read_bytes(dir_ / "a.tmp");
  std::vector<u8> cut(bytes.begin(), bytes.begin() + bytes.size() / 2);
  write_bytes(dir_ / "cut.tmp", cut);
  compress::TempInputReader reader(dir_ / "cut.tmp");
  EXPECT_THROW(
      {
        while (reader.next()) {
        }
      },
      Error);
}

TEST_F(CorruptionFixture, BitflippedTempInputNeverCrashes) {
  const auto original = read_bytes(dir_ / "a.tmp");
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    auto bytes = original;
    const std::size_t at = 16 + rng.uniform(bytes.size() - 16);
    bytes[at] ^= static_cast<u8>(1 + rng.uniform(255));
    write_bytes(dir_ / "flip.tmp", bytes);
    try {
      compress::TempInputReader reader(dir_ / "flip.tmp");
      while (reader.next()) {
      }
    } catch (const Error&) {
      // acceptable
    }
  }
  SUCCEED();
}

// ---- degenerate datasets --------------------------------------------------------

TEST(Degenerate, EmptyAlignmentFileStillEmitsAllSites) {
  const fs::path dir = fs::temp_directory_path() / "gsnp_degenerate";
  fs::create_directories(dir);
  genome::GenomeSpec gspec;
  gspec.name = "chrD";
  gspec.length = 2'000;
  const genome::Reference ref = genome::generate_reference(gspec);
  reads::write_alignment_file(dir / "empty.soap", {});

  EngineConfig config;
  config.alignment_file = dir / "empty.soap";
  config.reference = &ref;
  config.temp_file = dir / "e.tmp";
  config.output_file = dir / "e.snp";
  config.window_size = 512;
  device::Device dev;
  const RunReport report = run_gsnp(config, dev);
  EXPECT_EQ(report.records, 0u);

  std::string name;
  const auto rows = read_snp_output(dir / "e.snp", name);
  ASSERT_EQ(rows.size(), ref.size());
  for (const auto& row : rows) {
    EXPECT_EQ(row.depth, 0u);
    EXPECT_EQ(row.quality, 0);
    // Prior-only call: homozygous reference.
    if (row.ref_base < kNumBases)
      EXPECT_EQ(row.genotype_rank, genotype_rank(row.ref_base, row.ref_base));
  }
  fs::remove_all(dir);
}

TEST(Degenerate, SingleSiteWindows) {
  // window_size=1: maximum windowing overhead, same results.
  const fs::path dir = fs::temp_directory_path() / "gsnp_tinywin";
  fs::create_directories(dir);
  genome::GenomeSpec gspec;
  gspec.name = "chrW";
  gspec.length = 300;
  const genome::Reference ref = genome::generate_reference(gspec);
  const genome::Diploid individual(ref, {});
  reads::ReadSimSpec rspec;
  rspec.depth = 4.0;
  reads::write_alignment_file(dir / "a.soap",
                              reads::simulate_reads(individual, rspec));

  EngineConfig config;
  config.alignment_file = dir / "a.soap";
  config.reference = &ref;
  config.temp_file = dir / "a.tmp";
  config.output_file = dir / "w1.snp";
  config.window_size = 1;
  run_gsnp_cpu(config);
  config.output_file = dir / "w300.snp";
  config.window_size = 300;
  config.temp_file = dir / "b.tmp";
  run_gsnp_cpu(config);
  const auto report = compare_output_files(dir / "w1.snp", dir / "w300.snp");
  EXPECT_TRUE(report.identical) << report.detail;
  fs::remove_all(dir);
}

// ---- randomized end-to-end fuzz ---------------------------------------------------

class ConsistencyFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(ConsistencyFuzz, EnginesAgreeOnRandomDatasets) {
  const u64 seed = GetParam();
  Rng rng(seed);
  const fs::path dir =
      fs::temp_directory_path() / ("gsnp_fuzz_" + std::to_string(seed));
  fs::create_directories(dir);

  genome::GenomeSpec gspec;
  gspec.name = "chrF";
  gspec.length = 2'000 + rng.uniform(8'000);
  gspec.n_gap_rate = rng.uniform_double() * 0.05;
  gspec.gc_content = 0.3 + 0.4 * rng.uniform_double();
  gspec.seed = seed * 13;
  const genome::Reference ref = genome::generate_reference(gspec);

  genome::SnpPlantSpec pspec;
  pspec.snp_rate = rng.uniform_double() * 0.01;
  pspec.seed = seed * 17;
  const auto snps = genome::plant_snps(ref, pspec);
  const genome::Diploid individual(ref, snps);
  const genome::DbSnpTable dbsnp = genome::make_dbsnp(ref, snps, 0.005, seed);

  reads::ReadSimSpec rspec;
  rspec.depth = 0.5 + 15.0 * rng.uniform_double();
  rspec.read_len = static_cast<u32>(30 + rng.uniform(120));
  rspec.error_scale = 0.5 + 4.0 * rng.uniform_double();
  rspec.multi_hit_rate = rng.uniform_double() * 0.3;
  rspec.mappable_fraction = 0.5 + 0.5 * rng.uniform_double();
  rspec.seed = seed * 19;
  reads::write_alignment_file(dir / "a.soap",
                              reads::simulate_reads(individual, rspec));

  EngineConfig config;
  config.alignment_file = dir / "a.soap";
  config.reference = &ref;
  config.dbsnp = &dbsnp;
  config.temp_file = dir / "a.tmp";
  config.window_size = static_cast<u32>(64 + rng.uniform(4'000));

  config.output_file = dir / "soapsnp.txt";
  run_soapsnp(config);
  config.output_file = dir / "gsnp.snp";
  device::Device dev;
  run_gsnp(config, dev);

  const auto report =
      compare_output_files(dir / "soapsnp.txt", dir / "gsnp.snp");
  EXPECT_TRUE(report.identical) << "seed " << seed << ": " << report.detail;
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---- p_matrix reuse ------------------------------------------------------------------

TEST_F(CorruptionFixture, MatrixReuseIsBitExact) {
  EngineConfig config;
  config.alignment_file = dir_ / "a.soap";
  config.reference = &ref_;
  config.temp_file = dir_ / "m.tmp";
  config.window_size = 1'024;

  // First run saves the matrix.
  config.output_file = dir_ / "m1.snp";
  config.p_matrix_out = dir_ / "pm.bin";
  run_gsnp_cpu(config);

  // Second run reloads it and must produce identical output.
  config.p_matrix_out.clear();
  config.p_matrix_in = dir_ / "pm.bin";
  config.output_file = dir_ / "m2.snp";
  config.temp_file = dir_ / "m2.tmp";
  run_gsnp_cpu(config);

  const auto report = compare_output_files(dir_ / "m1.snp", dir_ / "m2.snp");
  EXPECT_TRUE(report.identical) << report.detail;

  // SOAPsnp path with reuse (skips the counting pass entirely).
  config.output_file = dir_ / "m3.txt";
  run_soapsnp(config);
  const auto report2 = compare_output_files(dir_ / "m1.snp", dir_ / "m3.txt");
  EXPECT_TRUE(report2.identical) << report2.detail;
}

}  // namespace
}  // namespace gsnp::core
