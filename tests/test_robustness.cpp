// Robustness and failure-injection tests: corrupted/truncated binary files
// must raise gsnp::Error (never crash or return garbage silently), and the
// pipeline must survive degenerate datasets.  Plus a randomized end-to-end
// consistency fuzz across dataset shapes.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/compress/temp_input.hpp"
#include "src/core/consistency.hpp"
#include "src/core/engine.hpp"
#include "src/core/genome_pipeline.hpp"
#include "src/core/output_codec.hpp"
#include "src/core/run_manifest.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"

namespace gsnp::core {
namespace {

namespace fs = std::filesystem;

std::vector<u8> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  GSNP_CHECK_MSG(in.good(), "cannot open " << path);
  return std::vector<u8>(std::istreambuf_iterator<char>(in), {});
}

void write_bytes(const fs::path& path, std::span<const u8> bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// A small compressed output file to corrupt.
class CorruptionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_robust_test";
    fs::create_directories(dir_);
    genome::GenomeSpec gspec;
    gspec.name = "chrR";
    gspec.length = 5'000;
    ref_ = genome::generate_reference(gspec);
    const genome::Diploid individual(ref_, {});
    reads::ReadSimSpec rspec;
    rspec.depth = 5.0;
    records_ = reads::simulate_reads(individual, rspec);
    reads::write_alignment_file(dir_ / "a.soap", records_);

    EngineConfig config;
    config.alignment_file = dir_ / "a.soap";
    config.reference = &ref_;
    config.temp_file = dir_ / "a.tmp";
    config.output_file = dir_ / "out.snp";
    config.window_size = 1'024;
    run_gsnp_cpu(config);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  genome::Reference ref_;
  std::vector<reads::AlignmentRecord> records_;
};

TEST_F(CorruptionFixture, TruncatedOutputRaises) {
  auto bytes = read_bytes(dir_ / "out.snp");
  for (const double fraction : {0.25, 0.5, 0.9, 0.99}) {
    std::vector<u8> cut(bytes.begin(),
                        bytes.begin() + static_cast<std::ptrdiff_t>(
                                            fraction * bytes.size()));
    write_bytes(dir_ / "cut.snp", cut);
    std::string name;
    EXPECT_THROW(read_snp_compressed_file(dir_ / "cut.snp", name), Error)
        << "fraction " << fraction;
  }
}

TEST_F(CorruptionFixture, BitflippedOutputAlwaysRaises) {
  // Offsets >= 16 are past the 13-byte header, so every flip lands in frame
  // data (length varint, payload, or trailing CRC).  Since container v2 each
  // frame carries a payload CRC-32, so *any* such corruption must raise
  // gsnp::Error — silently decoding garbage rows is no longer acceptable.
  const auto original = read_bytes(dir_ / "out.snp");
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    auto bytes = original;
    const std::size_t at = 16 + rng.uniform(bytes.size() - 16);
    bytes[at] ^= static_cast<u8>(1 + rng.uniform(255));
    write_bytes(dir_ / "flip.snp", bytes);
    std::string name;
    EXPECT_THROW(read_snp_compressed_file(dir_ / "flip.snp", name), Error)
        << "trial " << trial << " flipped byte " << at;
  }
}

TEST_F(CorruptionFixture, TruncatedTempInputRaises) {
  const auto bytes = read_bytes(dir_ / "a.tmp");
  std::vector<u8> cut(bytes.begin(), bytes.begin() + bytes.size() / 2);
  write_bytes(dir_ / "cut.tmp", cut);
  compress::TempInputReader reader(dir_ / "cut.tmp");
  EXPECT_THROW(
      {
        while (reader.next()) {
        }
      },
      Error);
}

TEST_F(CorruptionFixture, BitflippedTempInputAlwaysRaises) {
  // Same argument as for the output container: flips at >= 16 are always in
  // chunk data, and every chunk is CRC-protected since GSNPTMP2.
  const auto original = read_bytes(dir_ / "a.tmp");
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    auto bytes = original;
    const std::size_t at = 16 + rng.uniform(bytes.size() - 16);
    bytes[at] ^= static_cast<u8>(1 + rng.uniform(255));
    write_bytes(dir_ / "flip.tmp", bytes);
    EXPECT_THROW(
        {
          compress::TempInputReader reader(dir_ / "flip.tmp");
          while (reader.next()) {
          }
        },
        Error)
        << "trial " << trial << " flipped byte " << at;
  }
}

TEST_F(CorruptionFixture, RejectsVersion1Containers) {
  // Container v2 added frame CRCs; v1 files (magic ...OUT1 / ...TMP1) have no
  // CRC and must be rejected up front by the magic check, not misparsed.
  auto snp = read_bytes(dir_ / "out.snp");
  ASSERT_EQ(snp[7], '2');
  snp[7] = '1';
  write_bytes(dir_ / "v1.snp", snp);
  std::string name;
  EXPECT_THROW(read_snp_compressed_file(dir_ / "v1.snp", name), Error);
  EXPECT_THROW(read_snp_range(dir_ / "v1.snp", 0, 100, name), Error);

  auto tmp = read_bytes(dir_ / "a.tmp");
  ASSERT_EQ(tmp[7], '2');
  tmp[7] = '1';
  write_bytes(dir_ / "v1.tmp", tmp);
  EXPECT_THROW(compress::TempInputReader reader(dir_ / "v1.tmp"), Error);
}

TEST_F(CorruptionFixture, RangeQuerySkipsFramesButVerifiesReadOnes) {
  // Range queries seek past non-overlapping frames (payload + CRC) and must
  // still land correctly on later frame boundaries; frames they decompress
  // are CRC-verified.
  std::string name;
  const auto all = read_snp_compressed_file(dir_ / "out.snp", name);
  const auto slice = read_snp_range(dir_ / "out.snp", 3'000, 4'000, name);
  std::size_t expected = 0;
  for (const auto& row : all)
    if (row.pos >= 3'000 && row.pos < 4'000) ++expected;
  EXPECT_EQ(slice.size(), expected);
  EXPECT_GT(slice.size(), 0u);

  // Corrupt a byte inside the *last* frame: a range query over early
  // positions (frames are 1024 sites here) skips it unverified...
  auto bytes = read_bytes(dir_ / "out.snp");
  bytes[bytes.size() - 5] ^= 0xFF;
  write_bytes(dir_ / "tail.snp", bytes);
  const auto early = read_snp_range(dir_ / "tail.snp", 0, 1'000, name);
  std::size_t expected_early = 0;
  for (const auto& row : all)
    if (row.pos < 1'000) ++expected_early;
  EXPECT_EQ(early.size(), expected_early);
  EXPECT_GT(early.size(), 0u);
  // ...while a query touching the corrupt frame raises.
  EXPECT_THROW(read_snp_range(dir_ / "tail.snp", 4'500, 5'000, name), Error);
}

// ---- degenerate datasets --------------------------------------------------------

TEST(Degenerate, EmptyAlignmentFileStillEmitsAllSites) {
  const fs::path dir = fs::temp_directory_path() / "gsnp_degenerate";
  fs::create_directories(dir);
  genome::GenomeSpec gspec;
  gspec.name = "chrD";
  gspec.length = 2'000;
  const genome::Reference ref = genome::generate_reference(gspec);
  reads::write_alignment_file(dir / "empty.soap", {});

  EngineConfig config;
  config.alignment_file = dir / "empty.soap";
  config.reference = &ref;
  config.temp_file = dir / "e.tmp";
  config.output_file = dir / "e.snp";
  config.window_size = 512;
  device::Device dev;
  const RunReport report = run_gsnp(config, dev);
  EXPECT_EQ(report.records, 0u);

  std::string name;
  const auto rows = read_snp_output(dir / "e.snp", name);
  ASSERT_EQ(rows.size(), ref.size());
  for (const auto& row : rows) {
    EXPECT_EQ(row.depth, 0u);
    EXPECT_EQ(row.quality, 0);
    // Prior-only call: homozygous reference.
    if (row.ref_base < kNumBases)
      EXPECT_EQ(row.genotype_rank, genotype_rank(row.ref_base, row.ref_base));
  }
  fs::remove_all(dir);
}

TEST(Degenerate, SingleSiteWindows) {
  // window_size=1: maximum windowing overhead, same results.
  const fs::path dir = fs::temp_directory_path() / "gsnp_tinywin";
  fs::create_directories(dir);
  genome::GenomeSpec gspec;
  gspec.name = "chrW";
  gspec.length = 300;
  const genome::Reference ref = genome::generate_reference(gspec);
  const genome::Diploid individual(ref, {});
  reads::ReadSimSpec rspec;
  rspec.depth = 4.0;
  reads::write_alignment_file(dir / "a.soap",
                              reads::simulate_reads(individual, rspec));

  EngineConfig config;
  config.alignment_file = dir / "a.soap";
  config.reference = &ref;
  config.temp_file = dir / "a.tmp";
  config.output_file = dir / "w1.snp";
  config.window_size = 1;
  run_gsnp_cpu(config);
  config.output_file = dir / "w300.snp";
  config.window_size = 300;
  config.temp_file = dir / "b.tmp";
  run_gsnp_cpu(config);
  const auto report = compare_output_files(dir / "w1.snp", dir / "w300.snp");
  EXPECT_TRUE(report.identical) << report.detail;
  fs::remove_all(dir);
}

// ---- fault-tolerant genome pipeline ----------------------------------------------

/// Three small chromosomes driven through core::run_genome with a fault-
/// injecting device.  Fault triggers are derived from a probe run of
/// chromosome 1 alone: device operation counters are deterministic, so
/// "chromosome 2's first allocation" is exactly the probe's final count.
class FaultTolerantGenome : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_fault_genome";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    for (int c = 0; c < 3; ++c) {
      genome::GenomeSpec gspec;
      gspec.name = "chr" + std::to_string(c + 1);
      gspec.length = 4'000 - 1'000 * static_cast<u64>(c);
      gspec.seed = 80 + static_cast<u64>(c);
      refs_.push_back(genome::generate_reference(gspec));
    }
    for (int c = 0; c < 3; ++c) {
      const genome::Diploid individual(refs_[c], {});
      reads::ReadSimSpec rspec;
      rspec.depth = 5.0;
      rspec.seed = 90 + static_cast<u64>(c);
      const fs::path align = dir_ / (refs_[c].name() + ".soap");
      reads::write_alignment_file(align,
                                  reads::simulate_reads(individual, rspec));
      ChromosomeJob job;
      job.name = refs_[c].name();
      job.alignment_file = align;
      job.reference = &refs_[c];
      config_.chromosomes.push_back(job);
    }
    config_.window_size = 1'024;
  }
  void TearDown() override { fs::remove_all(dir_); }

  struct OpCounts {
    u64 allocs;
    u64 h2d;
  };
  /// Device-operation counts consumed by chromosome 1 alone.
  OpCounts probe_chr1() {
    GenomeRunConfig one = config_;
    one.chromosomes.resize(1);
    one.output_dir = dir_ / "probe";
    device::Device dev;
    run_genome(one, EngineKind::kGsnp, &dev);
    return {dev.alloc_count(), dev.h2d_count()};
  }

  GenomeReport clean_cpu_run(const fs::path& out) {
    GenomeRunConfig clean = config_;
    clean.output_dir = out;
    return run_genome(clean, EngineKind::kGsnpCpu);
  }

  fs::path dir_;
  std::vector<genome::Reference> refs_;
  GenomeRunConfig config_;
};

TEST_F(FaultTolerantGenome, InjectedOomDegradesToCpuBitExact) {
  const OpCounts ops = probe_chr1();
  device::DeviceSpec spec;
  spec.fault.fail_alloc_at = static_cast<i64>(ops.allocs);
  spec.fault.fault_count = 2;  // == max_attempts: every retry of chr2 fails
  device::Device dev(spec);

  GenomeRunConfig cfg = config_;
  cfg.output_dir = dir_ / "faulty";
  cfg.retry.max_attempts = 2;
  const GenomeReport report = run_genome(cfg, EngineKind::kGsnp, &dev);

  ASSERT_EQ(report.statuses.size(), 3u);
  EXPECT_FALSE(report.statuses[0].degraded);
  EXPECT_EQ(report.statuses[0].attempts, 1);
  EXPECT_TRUE(report.statuses[1].degraded);
  EXPECT_EQ(report.statuses[1].used, EngineKind::kGsnpCpu);
  EXPECT_EQ(report.statuses[1].attempts, 3);  // 2 device tries + CPU fallback
  EXPECT_FALSE(report.statuses[1].error.empty());
  EXPECT_FALSE(report.statuses[2].degraded);  // fault cleared: chr3 on GPU
  EXPECT_TRUE(report.any_degraded());

  const RunManifest manifest = read_run_manifest(report.manifest_file);
  const ManifestEntry* entry = manifest.find("chr2");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->status, "done");
  EXPECT_TRUE(entry->degraded);
  EXPECT_EQ(entry->requested, "gsnp");
  EXPECT_EQ(entry->engine, "gsnp_cpu");

  // The degraded chromosome's output is bit-identical to a clean CPU run
  // (§IV-G) — degradation costs speed, never correctness.
  const GenomeReport cpu = clean_cpu_run(dir_ / "clean");
  for (std::size_t c = 0; c < 3; ++c) {
    const auto check =
        compare_output_files(report.output_files[c], cpu.output_files[c]);
    EXPECT_TRUE(check.identical) << cfg.chromosomes[c].name << ": "
                                 << check.detail;
  }
}

TEST_F(FaultTolerantGenome, TransientTransferCorruptionRetriedNotPropagated) {
  const OpCounts ops = probe_chr1();
  device::DeviceSpec spec;
  spec.fault.corrupt_h2d_at = static_cast<i64>(ops.h2d);
  spec.fault.fault_count = 1;  // one glitched DMA, then healthy
  device::Device dev(spec);

  GenomeRunConfig cfg = config_;
  cfg.output_dir = dir_ / "glitch";
  const GenomeReport report = run_genome(cfg, EngineKind::kGsnp, &dev);

  ASSERT_EQ(report.statuses.size(), 3u);
  EXPECT_EQ(report.statuses[1].attempts, 2);  // CRC caught it, retry clean
  EXPECT_FALSE(report.statuses[1].degraded);
  EXPECT_FALSE(report.statuses[1].error.empty());

  // The corrupted transfer never reached an output file: every chromosome
  // is still bit-identical to a clean CPU run.
  const GenomeReport cpu = clean_cpu_run(dir_ / "clean");
  for (std::size_t c = 0; c < 3; ++c) {
    const auto check =
        compare_output_files(report.output_files[c], cpu.output_files[c]);
    EXPECT_TRUE(check.identical) << cfg.chromosomes[c].name << ": "
                                 << check.detail;
  }
}

TEST_F(FaultTolerantGenome, CheckpointResumeSkipsVerifiedChromosomes) {
  const OpCounts ops = probe_chr1();
  GenomeRunConfig cfg = config_;
  cfg.output_dir = dir_ / "run";
  cfg.retry.max_attempts = 2;
  cfg.retry.allow_cpu_fallback = false;

  {
    device::DeviceSpec spec;
    spec.fault.fail_alloc_at = static_cast<i64>(ops.allocs);
    spec.fault.fault_count = -1;  // wedged card: chr2 cannot complete
    device::Device dev(spec);
    EXPECT_THROW(run_genome(cfg, EngineKind::kGsnp, &dev),
                 device::DeviceFaultError);
  }

  // The manifest recorded chr1 done and chr2 failed before the throw, and
  // no torn chr2 output was published.
  const RunManifest aborted =
      read_run_manifest(cfg.output_dir / "manifest.json");
  ASSERT_EQ(aborted.chromosomes.size(), 2u);
  EXPECT_EQ(aborted.chromosomes[0].status, "done");
  EXPECT_EQ(aborted.chromosomes[1].status, "failed");
  EXPECT_EQ(aborted.chromosomes[1].attempts, 2);
  EXPECT_TRUE(fs::exists(cfg.output_dir / "chr1.gsnp.snp"));
  EXPECT_FALSE(fs::exists(cfg.output_dir / "chr2.gsnp.snp"));
  const auto chr1_mtime = fs::last_write_time(cfg.output_dir / "chr1.gsnp.snp");

  // Resume on a healthy card: chr1 is skipped (manifest + CRC verified),
  // chr2 and chr3 run.
  cfg.resume = true;
  device::Device healthy;
  const GenomeReport report = run_genome(cfg, EngineKind::kGsnp, &healthy);
  ASSERT_EQ(report.statuses.size(), 3u);
  EXPECT_TRUE(report.statuses[0].resumed);
  EXPECT_EQ(report.statuses[0].attempts, 0);
  EXPECT_FALSE(report.statuses[1].resumed);
  EXPECT_FALSE(report.statuses[2].resumed);
  EXPECT_EQ(fs::last_write_time(cfg.output_dir / "chr1.gsnp.snp"),
            chr1_mtime);  // not rewritten

  // Byte-for-byte equal to a never-interrupted run.
  GenomeRunConfig clean = config_;
  clean.output_dir = dir_ / "uninterrupted";
  device::Device dev2;
  const GenomeReport full = run_genome(clean, EngineKind::kGsnp, &dev2);
  for (std::size_t c = 0; c < 3; ++c)
    EXPECT_EQ(read_bytes(report.output_files[c]),
              read_bytes(full.output_files[c]))
        << cfg.chromosomes[c].name;

  // Tampering with a recorded output invalidates its checkpoint: that
  // chromosome is re-run instead of trusted.
  {
    auto bytes = read_bytes(cfg.output_dir / "chr1.gsnp.snp");
    bytes.back() ^= 0xFF;
    write_bytes(cfg.output_dir / "chr1.gsnp.snp", bytes);
  }
  device::Device dev3;
  const GenomeReport again = run_genome(cfg, EngineKind::kGsnp, &dev3);
  EXPECT_FALSE(again.statuses[0].resumed);
  EXPECT_TRUE(again.statuses[1].resumed);
  EXPECT_TRUE(again.statuses[2].resumed);
  EXPECT_EQ(read_bytes(cfg.output_dir / "chr1.gsnp.snp"),
            read_bytes(full.output_files[0]));
}

// ---- crash-point recovery ---------------------------------------------------------
//
// GenomeRunConfig::checkpoint_hook fires at the two durability edges of each
// chromosome: "pre_publish" (output staged in `.part`, rename pending) and
// "post_publish" (output renamed, manifest entry pending).  A hook that
// throws models the process dying at exactly that instant; a resume run must
// converge to the same bytes as a never-interrupted run, with each
// chromosome's work applied exactly once.

struct InjectedCrash : std::runtime_error {
  InjectedCrash() : std::runtime_error("injected crash") {}
};

TEST_F(FaultTolerantGenome, CrashBeforePublishLeavesOnlyTornStaging) {
  GenomeRunConfig cfg = config_;
  cfg.output_dir = dir_ / "run";
  cfg.checkpoint_hook = [](std::string_view point,
                           const std::string& chromosome) {
    if (point == "pre_publish" && chromosome == "chr2") throw InjectedCrash();
  };
  device::Device dev;
  EXPECT_THROW(run_genome(cfg, EngineKind::kGsnp, &dev), InjectedCrash);

  // chr1 published and journaled; chr2 died before its rename — the staged
  // `.part` remains (as after a real crash) but no output was published and
  // no manifest entry was written.
  const RunManifest torn = read_run_manifest(cfg.output_dir / "manifest.json");
  ASSERT_EQ(torn.chromosomes.size(), 1u);
  EXPECT_EQ(torn.chromosomes[0].name, "chr1");
  EXPECT_TRUE(fs::exists(cfg.output_dir / "chr1.gsnp.snp"));
  EXPECT_FALSE(fs::exists(cfg.output_dir / "chr2.gsnp.snp"));
  EXPECT_TRUE(fs::exists(cfg.output_dir / "chr2.gsnp.snp.part"));

  // Resume: chr1 verifies and is skipped, chr2 re-runs (overwriting the torn
  // staging), chr3 runs fresh.
  cfg.checkpoint_hook = nullptr;
  cfg.resume = true;
  device::Device dev2;
  const GenomeReport report = run_genome(cfg, EngineKind::kGsnp, &dev2);
  EXPECT_TRUE(report.statuses[0].resumed);
  EXPECT_FALSE(report.statuses[1].resumed);
  EXPECT_EQ(report.statuses[1].attempts, 1);
  EXPECT_FALSE(fs::exists(cfg.output_dir / "chr2.gsnp.snp.part"));

  GenomeRunConfig clean = config_;
  clean.output_dir = dir_ / "clean";
  device::Device dev3;
  const GenomeReport full = run_genome(clean, EngineKind::kGsnp, &dev3);
  for (std::size_t c = 0; c < 3; ++c)
    EXPECT_EQ(read_bytes(report.output_files[c]),
              read_bytes(full.output_files[c]))
        << cfg.chromosomes[c].name;
  EXPECT_EQ(manifest_digest(read_run_manifest(report.manifest_file)),
            manifest_digest(read_run_manifest(full.manifest_file)));
}

TEST_F(FaultTolerantGenome, CrashBetweenPublishAndManifestReplaysExactlyOnce) {
  GenomeRunConfig cfg = config_;
  cfg.output_dir = dir_ / "run";
  cfg.checkpoint_hook = [](std::string_view point,
                           const std::string& chromosome) {
    if (point == "post_publish" && chromosome == "chr2") throw InjectedCrash();
  };
  device::Device dev;
  EXPECT_THROW(run_genome(cfg, EngineKind::kGsnp, &dev), InjectedCrash);

  // The torn window: chr2's output IS published but the manifest never heard
  // of it.  This is the case resume cannot skip — it must re-run chr2 and
  // converge by renaming identical bytes over the orphan.
  const RunManifest torn = read_run_manifest(cfg.output_dir / "manifest.json");
  ASSERT_EQ(torn.chromosomes.size(), 1u);
  EXPECT_TRUE(fs::exists(cfg.output_dir / "chr2.gsnp.snp"));
  const auto orphan_bytes = read_bytes(cfg.output_dir / "chr2.gsnp.snp");
  const auto chr1_mtime = fs::last_write_time(cfg.output_dir / "chr1.gsnp.snp");

  cfg.checkpoint_hook = nullptr;
  cfg.resume = true;
  device::Device dev2;
  const GenomeReport report = run_genome(cfg, EngineKind::kGsnp, &dev2);
  EXPECT_TRUE(report.statuses[0].resumed);
  EXPECT_FALSE(report.statuses[1].resumed);  // replayed, not trusted
  EXPECT_EQ(fs::last_write_time(cfg.output_dir / "chr1.gsnp.snp"),
            chr1_mtime);
  // Exactly-once at the byte level: the replay produced the orphan's bytes.
  EXPECT_EQ(read_bytes(cfg.output_dir / "chr2.gsnp.snp"), orphan_bytes);

  const RunManifest healed = read_run_manifest(report.manifest_file);
  ASSERT_EQ(healed.chromosomes.size(), 3u);
  for (const auto& entry : healed.chromosomes) EXPECT_EQ(entry.status, "done");

  GenomeRunConfig clean = config_;
  clean.output_dir = dir_ / "clean";
  device::Device dev3;
  const GenomeReport full = run_genome(clean, EngineKind::kGsnp, &dev3);
  EXPECT_EQ(manifest_digest(healed),
            manifest_digest(read_run_manifest(full.manifest_file)));
  for (std::size_t c = 0; c < 3; ++c)
    EXPECT_EQ(read_bytes(report.output_files[c]),
              read_bytes(full.output_files[c]))
        << cfg.chromosomes[c].name;
}

// ---- randomized end-to-end fuzz ---------------------------------------------------

class ConsistencyFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(ConsistencyFuzz, EnginesAgreeOnRandomDatasets) {
  const u64 seed = GetParam();
  Rng rng(seed);
  const fs::path dir =
      fs::temp_directory_path() / ("gsnp_fuzz_" + std::to_string(seed));
  fs::create_directories(dir);

  genome::GenomeSpec gspec;
  gspec.name = "chrF";
  gspec.length = 2'000 + rng.uniform(8'000);
  gspec.n_gap_rate = rng.uniform_double() * 0.05;
  gspec.gc_content = 0.3 + 0.4 * rng.uniform_double();
  gspec.seed = seed * 13;
  const genome::Reference ref = genome::generate_reference(gspec);

  genome::SnpPlantSpec pspec;
  pspec.snp_rate = rng.uniform_double() * 0.01;
  pspec.seed = seed * 17;
  const auto snps = genome::plant_snps(ref, pspec);
  const genome::Diploid individual(ref, snps);
  const genome::DbSnpTable dbsnp = genome::make_dbsnp(ref, snps, 0.005, seed);

  reads::ReadSimSpec rspec;
  rspec.depth = 0.5 + 15.0 * rng.uniform_double();
  rspec.read_len = static_cast<u32>(30 + rng.uniform(120));
  rspec.error_scale = 0.5 + 4.0 * rng.uniform_double();
  rspec.multi_hit_rate = rng.uniform_double() * 0.3;
  rspec.mappable_fraction = 0.5 + 0.5 * rng.uniform_double();
  rspec.seed = seed * 19;
  reads::write_alignment_file(dir / "a.soap",
                              reads::simulate_reads(individual, rspec));

  EngineConfig config;
  config.alignment_file = dir / "a.soap";
  config.reference = &ref;
  config.dbsnp = &dbsnp;
  config.temp_file = dir / "a.tmp";
  config.window_size = static_cast<u32>(64 + rng.uniform(4'000));

  config.output_file = dir / "soapsnp.txt";
  run_soapsnp(config);
  config.output_file = dir / "gsnp.snp";
  device::Device dev;
  run_gsnp(config, dev);

  const auto report =
      compare_output_files(dir / "soapsnp.txt", dir / "gsnp.snp");
  EXPECT_TRUE(report.identical) << "seed " << seed << ": " << report.detail;
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---- p_matrix reuse ------------------------------------------------------------------

TEST_F(CorruptionFixture, MatrixReuseIsBitExact) {
  EngineConfig config;
  config.alignment_file = dir_ / "a.soap";
  config.reference = &ref_;
  config.temp_file = dir_ / "m.tmp";
  config.window_size = 1'024;

  // First run saves the matrix.
  config.output_file = dir_ / "m1.snp";
  config.p_matrix_out = dir_ / "pm.bin";
  run_gsnp_cpu(config);

  // Second run reloads it and must produce identical output.
  config.p_matrix_out.clear();
  config.p_matrix_in = dir_ / "pm.bin";
  config.output_file = dir_ / "m2.snp";
  config.temp_file = dir_ / "m2.tmp";
  run_gsnp_cpu(config);

  const auto report = compare_output_files(dir_ / "m1.snp", dir_ / "m2.snp");
  EXPECT_TRUE(report.identical) << report.detail;

  // SOAPsnp path with reuse (skips the counting pass entirely).
  config.output_file = dir_ / "m3.txt";
  run_soapsnp(config);
  const auto report2 = compare_output_files(dir_ / "m1.snp", dir_ / "m3.txt");
  EXPECT_TRUE(report2.identical) << report2.detail;
}

}  // namespace
}  // namespace gsnp::core
