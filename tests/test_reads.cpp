// Unit tests for src/reads: alignment format, quality model, read simulator,
// dataset statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>

#include "src/common/error.hpp"
#include "src/common/phred.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/alignment.hpp"
#include "src/reads/quality_model.hpp"
#include "src/reads/simulator.hpp"
#include "src/reads/stats.hpp"

namespace gsnp::reads {
namespace {

namespace fs = std::filesystem;

AlignmentRecord sample_record() {
  AlignmentRecord rec;
  rec.read_id = "read_7";
  rec.seq = "ACGT";
  rec.qual = "IIII";
  rec.hit_count = 1;
  rec.pair_tag = 'a';
  rec.length = 4;
  rec.strand = Strand::kReverse;
  rec.chr_name = "chrR";
  rec.pos = 41;
  return rec;
}

// ---- format ------------------------------------------------------------------

TEST(AlignmentFormat, RoundTrip) {
  const AlignmentRecord rec = sample_record();
  const AlignmentRecord parsed = parse_alignment(format_alignment(rec));
  EXPECT_EQ(parsed, rec);
}

TEST(AlignmentFormat, PositionIsOneBasedInText) {
  const std::string line = format_alignment(sample_record());
  EXPECT_NE(line.find("\t42"), std::string::npos);
}

TEST(AlignmentFormat, StrandCharacters) {
  AlignmentRecord rec = sample_record();
  rec.strand = Strand::kForward;
  EXPECT_NE(format_alignment(rec).find("\t+\t"), std::string::npos);
  rec.strand = Strand::kReverse;
  EXPECT_NE(format_alignment(rec).find("\t-\t"), std::string::npos);
}

TEST(AlignmentFormat, RejectsMalformedLines) {
  EXPECT_THROW(parse_alignment("too\tfew\tfields"), Error);
  EXPECT_THROW(parse_alignment("id\tACGT\tIIII\t1\ta\t4\t?\tchr\t42"), Error);
  EXPECT_THROW(parse_alignment("id\tACGT\tIIII\t1\ta\t4\t+\tchr\t0"), Error);
  // seq/qual length mismatch with declared length:
  EXPECT_THROW(parse_alignment("id\tACG\tIIII\t1\ta\t4\t+\tchr\t42"), Error);
}

TEST(AlignmentFormat, FileRoundTripAndStreaming) {
  const fs::path path = fs::temp_directory_path() / "gsnp_test.soap";
  std::vector<AlignmentRecord> recs(3, sample_record());
  recs[1].pos = 50;
  recs[2].pos = 60;
  write_alignment_file(path, recs);

  AlignmentReader reader(path);
  for (const auto& expected : recs) {
    const auto got = reader.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, expected);
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(read_alignment_file(path), recs);
  fs::remove(path);
}

TEST(AlignmentFormat, MissingFileThrows) {
  EXPECT_THROW(AlignmentReader("/nonexistent/path.soap"), Error);
}

// ---- quality model ---------------------------------------------------------------

TEST(QualityModel, ValuesInRange) {
  QualityModel model({});
  Rng rng(1);
  const auto quals = model.sample(100, rng);
  ASSERT_EQ(quals.size(), 100u);
  for (const u8 q : quals) EXPECT_LT(q, kQualityLevels);
}

TEST(QualityModel, QuantizationCreatesRuns) {
  QualityModelSpec spec;
  spec.glitch_rate = 0.0;
  spec.quantization = 4;
  QualityModel model(spec);
  Rng rng(2);
  const auto quals = model.sample(100, rng);
  u64 runs = 1;
  for (std::size_t i = 1; i < quals.size(); ++i)
    runs += (quals[i] != quals[i - 1]);
  // Heavy quantization of a smooth decline -> few distinct runs.
  EXPECT_LT(runs, 20u);
  for (const u8 q : quals) EXPECT_EQ(q % 4, 0);
}

TEST(QualityModel, QualityDeclinesAlongRead) {
  QualityModelSpec spec;
  spec.glitch_rate = 0.0;
  spec.read_spread = 0;
  QualityModel model(spec);
  Rng rng(3);
  const auto quals = model.sample(100, rng);
  EXPECT_GT(static_cast<int>(quals.front()), static_cast<int>(quals.back()));
}

// ---- simulator ---------------------------------------------------------------------

class Simulator : public ::testing::Test {
 protected:
  void SetUp() override {
    genome::GenomeSpec gspec;
    gspec.length = 50000;
    ref_ = genome::generate_reference(gspec);
    genome::SnpPlantSpec pspec;
    pspec.snp_rate = 0.002;
    snps_ = genome::plant_snps(ref_, pspec);
    individual_.emplace(ref_, snps_);
    spec_.depth = 8.0;
    records_ = simulate_reads(*individual_, spec_);
  }

  genome::Reference ref_;
  std::vector<genome::PlantedSnp> snps_;
  std::optional<genome::Diploid> individual_;
  ReadSimSpec spec_;
  std::vector<AlignmentRecord> records_;
};

TEST_F(Simulator, RecordsSortedByPosition) {
  for (std::size_t i = 1; i < records_.size(); ++i)
    EXPECT_LE(records_[i - 1].pos, records_[i].pos);
}

TEST_F(Simulator, DepthApproximatelyHonored) {
  const DatasetStats stats = compute_stats(records_, ref_.size());
  EXPECT_NEAR(stats.depth, spec_.depth, 0.2);
}

TEST_F(Simulator, ReadsStayInBounds) {
  for (const auto& rec : records_) {
    EXPECT_EQ(rec.length, spec_.read_len);
    EXPECT_LE(rec.pos + rec.length, ref_.size());
    EXPECT_EQ(rec.seq.size(), spec_.read_len);
    EXPECT_EQ(rec.qual.size(), spec_.read_len);
  }
}

TEST_F(Simulator, StrandsBalanced) {
  u64 fwd = 0;
  for (const auto& rec : records_) fwd += (rec.strand == Strand::kForward);
  EXPECT_NEAR(static_cast<double>(fwd) / records_.size(), 0.5, 0.05);
}

TEST_F(Simulator, MultiHitRateHonored) {
  u64 multi = 0;
  for (const auto& rec : records_) multi += (rec.hit_count > 1);
  EXPECT_NEAR(static_cast<double>(multi) / records_.size(),
              spec_.multi_hit_rate, 0.03);
}

TEST_F(Simulator, ObservedBasesMostlyMatchHaplotypes) {
  // With mean quality ~30 and error_scale 1, mismatches vs *both* haplotypes
  // should be rare (sequencing errors only).
  u64 total = 0, mismatch = 0;
  for (const auto& rec : records_) {
    for (u64 p = rec.pos; p < rec.pos + rec.length; ++p) {
      SiteObservation so;
      ASSERT_TRUE(observe_site(rec, p, so));
      ++total;
      const u8 h0 = individual_->haplotype_base(p, 0);
      const u8 h1 = individual_->haplotype_base(p, 1);
      if (so.base != h0 && so.base != h1) ++mismatch;
    }
  }
  EXPECT_LT(static_cast<double>(mismatch) / total, 0.02);
}

TEST_F(Simulator, ObserveSiteCoordinatesAreCycles) {
  for (const auto& rec : records_) {
    SiteObservation first, last;
    ASSERT_TRUE(observe_site(rec, rec.pos, first));
    ASSERT_TRUE(observe_site(rec, rec.pos + rec.length - 1, last));
    if (rec.strand == Strand::kForward) {
      EXPECT_EQ(first.coord, 0);
      EXPECT_EQ(last.coord, rec.length - 1);
    } else {
      // Reverse reads sequence the rightmost reference base first.
      EXPECT_EQ(first.coord, rec.length - 1);
      EXPECT_EQ(last.coord, 0);
    }
  }
}

TEST_F(Simulator, ObserveSiteRejectsUncoveredPositions) {
  const auto& rec = records_.front();
  SiteObservation so;
  EXPECT_FALSE(observe_site(rec, rec.pos + rec.length, so));
  if (rec.pos > 0) EXPECT_FALSE(observe_site(rec, rec.pos - 1, so));
}

TEST_F(Simulator, DeterministicBySeed) {
  const auto again = simulate_reads(*individual_, spec_);
  EXPECT_EQ(again.size(), records_.size());
  EXPECT_EQ(again.front(), records_.front());
  EXPECT_EQ(again.back(), records_.back());
}

TEST_F(Simulator, ReverseStrandObservationConsistency) {
  // For a reverse-strand read the stored read base complements the observed
  // forward-strand base at the mirrored cycle.
  for (const auto& rec : records_) {
    if (rec.strand != Strand::kReverse) continue;
    SiteObservation so;
    ASSERT_TRUE(observe_site(rec, rec.pos + 2, so));
    const u32 cycle = rec.length - 1 - 2;
    EXPECT_EQ(so.coord, cycle);
    EXPECT_EQ(so.base, complement(base_from_char(rec.seq[cycle])));
    EXPECT_EQ(so.quality, quality_from_char(rec.qual[cycle]));
    break;
  }
}

TEST(SimulatorEdge, HighErrorScaleRaisesMismatchRate) {
  genome::GenomeSpec gspec;
  gspec.length = 20000;
  const genome::Reference ref = genome::generate_reference(gspec);
  const genome::Diploid ind(ref, {});
  ReadSimSpec clean, noisy;
  clean.depth = noisy.depth = 4.0;
  noisy.error_scale = 20.0;

  const auto count_mismatch = [&](const std::vector<AlignmentRecord>& recs) {
    u64 total = 0, mm = 0;
    for (const auto& rec : recs)
      for (u64 p = rec.pos; p < rec.pos + rec.length; ++p) {
        SiteObservation so;
        observe_site(rec, p, so);
        ++total;
        mm += (so.base != ref.base(p));
      }
    return static_cast<double>(mm) / total;
  };
  EXPECT_GT(count_mismatch(simulate_reads(ind, noisy)),
            5.0 * count_mismatch(simulate_reads(ind, clean)));
}

// ---- paired-end simulation --------------------------------------------------------------

class PairedSimulator : public ::testing::Test {
 protected:
  void SetUp() override {
    genome::GenomeSpec gspec;
    gspec.length = 40000;
    ref_ = genome::generate_reference(gspec);
    genome::SnpPlantSpec pspec;
    snps_ = genome::plant_snps(ref_, pspec);
    individual_.emplace(ref_, snps_);
    spec_.depth = 8.0;
    spec_.paired_end = true;
    records_ = simulate_reads(*individual_, spec_);
  }
  genome::Reference ref_;
  std::vector<genome::PlantedSnp> snps_;
  std::optional<genome::Diploid> individual_;
  ReadSimSpec spec_;
  std::vector<AlignmentRecord> records_;
};

TEST_F(PairedSimulator, MatesShareIdAndHaveOppositeTags) {
  std::map<std::string, std::vector<const AlignmentRecord*>> frags;
  for (const auto& rec : records_) frags[rec.read_id].push_back(&rec);
  for (const auto& [id, mates] : frags) {
    ASSERT_EQ(mates.size(), 2u) << id;
    EXPECT_NE(mates[0]->pair_tag, mates[1]->pair_tag) << id;
    EXPECT_NE(mates[0]->strand, mates[1]->strand) << id;
  }
}

TEST_F(PairedSimulator, InsertSizesNearTarget) {
  std::map<std::string, std::vector<const AlignmentRecord*>> frags;
  for (const auto& rec : records_) frags[rec.read_id].push_back(&rec);
  for (const auto& [id, mates] : frags) {
    const u64 lo = std::min(mates[0]->pos, mates[1]->pos);
    const u64 hi = std::max(mates[0]->pos, mates[1]->pos);
    const u64 insert = hi + spec_.read_len - lo;
    EXPECT_GE(insert, static_cast<u64>(spec_.insert_size) -
                          2 * spec_.insert_spread) << id;
    EXPECT_LE(insert, static_cast<u64>(spec_.insert_size) +
                          2 * spec_.insert_spread) << id;
  }
}

TEST_F(PairedSimulator, StillPositionSortedAndInBounds) {
  for (std::size_t i = 1; i < records_.size(); ++i)
    EXPECT_LE(records_[i - 1].pos, records_[i].pos);
  for (const auto& rec : records_)
    EXPECT_LE(rec.pos + rec.length, ref_.size());
}

TEST_F(PairedSimulator, DepthStillApproximatelyHonored) {
  const DatasetStats stats = compute_stats(records_, ref_.size());
  EXPECT_NEAR(stats.depth, spec_.depth, 0.4);
}

// ---- stats ----------------------------------------------------------------------------

TEST(Stats, ExactOnConstructedCase) {
  std::vector<AlignmentRecord> recs(2);
  recs[0].pos = 0;
  recs[0].length = 10;
  recs[1].pos = 5;
  recs[1].length = 10;
  const DatasetStats stats = compute_stats(recs, 100);
  EXPECT_EQ(stats.num_reads, 2u);
  EXPECT_EQ(stats.total_bases, 20u);
  EXPECT_DOUBLE_EQ(stats.depth, 0.2);
  EXPECT_DOUBLE_EQ(stats.coverage, 0.15);  // sites 0..14 covered
}

TEST(Stats, CoverageClampedAtReferenceEnd) {
  std::vector<AlignmentRecord> recs(1);
  recs[0].pos = 95;
  recs[0].length = 10;  // extends past the end
  const DatasetStats stats = compute_stats(recs, 100);
  EXPECT_DOUBLE_EQ(stats.coverage, 0.05);
}

TEST(Stats, EmptyDataset) {
  const DatasetStats stats = compute_stats({}, 50);
  EXPECT_EQ(stats.num_reads, 0u);
  EXPECT_DOUBLE_EQ(stats.depth, 0.0);
  EXPECT_DOUBLE_EQ(stats.coverage, 0.0);
}

// ---- hotspot pileups -------------------------------------------------------

/// Per-position coverage over [0, length).
std::vector<u32> coverage_profile(const std::vector<AlignmentRecord>& recs,
                                  u64 length) {
  std::vector<u32> depth(length, 0);
  for (const auto& rec : recs)
    for (u64 p = rec.pos; p < std::min<u64>(rec.pos + rec.length, length); ++p)
      ++depth[p];
  return depth;
}

/// Mean depth over [lo, hi).
double mean_depth(const std::vector<u32>& depth, u64 lo, u64 hi) {
  double sum = 0.0;
  for (u64 p = lo; p < hi; ++p) sum += depth[p];
  return sum / static_cast<double>(hi - lo);
}

TEST(Hotspot, RealizedDepthProfileMatchesIslands) {
  genome::GenomeSpec gspec;
  gspec.length = 60'000;
  gspec.seed = 41;
  const genome::Reference ref = genome::generate_reference(gspec);
  const genome::Diploid individual(ref, {});

  // Hand-placed islands with known multipliers so the expected profile is
  // exact: 50x and 120x pileups over a 6x baseline.
  ReadSimSpec spec;
  spec.depth = 6.0;
  spec.seed = 42;
  spec.hotspots = {{10'000, 3'000, 50.0}, {40'000, 3'000, 120.0}};
  const auto records = simulate_reads(individual, spec);

  // Records stay position-sorted with the hotspot reads merged in.
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_LE(records[i - 1].pos, records[i].pos);

  const auto depth = coverage_profile(records, ref.size());
  // Island interiors (trimmed a read length on each side to dodge the ramp
  // where reads start before/inside the boundary) sit at multiplier *
  // baseline; far outside the islands the profile is plain baseline.
  const double in1 = mean_depth(depth, 10'000 + spec.read_len,
                                13'000 - spec.read_len);
  const double in2 = mean_depth(depth, 40'000 + spec.read_len,
                                43'000 - spec.read_len);
  const double outside = mean_depth(depth, 20'000, 35'000);
  EXPECT_NEAR(in1, 50.0 * 6.0, 0.25 * 50.0 * 6.0);
  EXPECT_NEAR(in2, 120.0 * 6.0, 0.25 * 120.0 * 6.0);
  EXPECT_NEAR(outside, 6.0, 0.25 * 6.0);
  // The skew is real: islands are an order of magnitude above baseline.
  EXPECT_GT(in1, 10.0 * outside);
  EXPECT_GT(in2, in1);
}

TEST(Hotspot, NoIslandsMeansUnchangedOutput) {
  genome::GenomeSpec gspec;
  gspec.length = 20'000;
  const genome::Reference ref = genome::generate_reference(gspec);
  const genome::Diploid individual(ref, {});
  ReadSimSpec spec;
  spec.depth = 4.0;
  const auto base = simulate_reads(individual, spec);
  spec.hotspots = {};  // explicit empty == default
  const auto again = simulate_reads(individual, spec);
  ASSERT_EQ(base.size(), again.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].pos, again[i].pos);
    EXPECT_EQ(base[i].seq, again[i].seq);
  }
}

TEST(Hotspot, OutOfBoundsIslandRejected) {
  genome::GenomeSpec gspec;
  gspec.length = 5'000;
  const genome::Reference ref = genome::generate_reference(gspec);
  const genome::Diploid individual(ref, {});
  ReadSimSpec spec;
  spec.hotspots = {{4'000, 2'000, 10.0}};  // spills past the sequence end
  EXPECT_THROW(simulate_reads(individual, spec), Error);
  spec.hotspots = {{1'000, 500, 0.5}};  // multiplier below baseline
  EXPECT_THROW(simulate_reads(individual, spec), Error);
}

}  // namespace
}  // namespace gsnp::reads
