// Tests for the whole-genome driver (multi-chromosome runs) and p_matrix
// serialization.

#include <gtest/gtest.h>

#include <filesystem>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/core/consistency.hpp"
#include "src/core/genome_pipeline.hpp"
#include "src/core/pmatrix.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"

namespace gsnp::core {
namespace {

namespace fs = std::filesystem;

// ---- p_matrix serialization -------------------------------------------------

TEST(PMatrixIo, BitExactRoundTrip) {
  PMatrixCounter counter;
  Rng rng(3);
  for (int i = 0; i < 30000; ++i)
    counter.add(static_cast<int>(rng.uniform(kQualityLevels)),
                static_cast<int>(rng.uniform(kMaxReadLen)),
                static_cast<int>(rng.uniform(4)),
                static_cast<int>(rng.uniform(4)));
  const PMatrix pm = finalize_p_matrix(counter);

  const fs::path path = fs::temp_directory_path() / "gsnp_pm_test.bin";
  write_p_matrix(path, pm);
  const PMatrix loaded = read_p_matrix(path);
  // Bit-exact: reloading must preserve §IV-G consistency.
  EXPECT_EQ(loaded.flat(), pm.flat());
  fs::remove(path);
}

TEST(PMatrixIo, RejectsCorruptFiles) {
  const fs::path path = fs::temp_directory_path() / "gsnp_pm_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "GARBAGE!";
  }
  EXPECT_THROW(read_p_matrix(path), Error);
  fs::remove(path);
}

TEST(PMatrixIo, RejectsTruncatedFiles) {
  const PMatrix pm = finalize_p_matrix(PMatrixCounter{});
  const fs::path path = fs::temp_directory_path() / "gsnp_pm_trunc.bin";
  write_p_matrix(path, pm);
  fs::resize_file(path, fs::file_size(path) / 2);
  EXPECT_THROW(read_p_matrix(path), Error);
  fs::remove(path);
}

// ---- genome pipeline -----------------------------------------------------------

class GenomePipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_pipeline_test";
    fs::create_directories(dir_);
    for (int c = 0; c < 3; ++c) {
      genome::GenomeSpec gspec;
      gspec.name = "chr" + std::to_string(c + 1);
      gspec.length = 8'000 - 1'000 * static_cast<u64>(c);
      gspec.seed = 40 + static_cast<u64>(c);
      refs_.push_back(genome::generate_reference(gspec));
    }
    for (int c = 0; c < 3; ++c) {
      genome::SnpPlantSpec pspec;
      pspec.seed = 50 + static_cast<u64>(c);
      const auto snps = genome::plant_snps(refs_[c], pspec);
      const genome::Diploid individual(refs_[c], snps);
      reads::ReadSimSpec rspec;
      rspec.depth = 6.0;
      rspec.seed = 60 + static_cast<u64>(c);
      const fs::path align = dir_ / (refs_[c].name() + ".soap");
      reads::write_alignment_file(align,
                                  reads::simulate_reads(individual, rspec));

      ChromosomeJob job;
      job.name = refs_[c].name();
      job.alignment_file = align;
      job.reference = &refs_[c];
      config_.chromosomes.push_back(job);
    }
    config_.output_dir = dir_ / "out";
    config_.window_size = 2'048;
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::vector<genome::Reference> refs_;
  GenomeRunConfig config_;
};

TEST_F(GenomePipeline, RunsAllChromosomes) {
  device::Device dev;
  const GenomeReport report = run_genome(config_, EngineKind::kGsnp, &dev);
  ASSERT_EQ(report.per_chromosome.size(), 3u);
  EXPECT_EQ(report.total_sites, 8'000u + 7'000 + 6'000);
  for (const auto& path : report.output_files) EXPECT_TRUE(fs::exists(path));
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GT(report.total_output_bytes, 0u);
}

TEST_F(GenomePipeline, EnginesAgreeAcrossAllChromosomes) {
  device::Device dev;
  const auto gsnp = run_genome(config_, EngineKind::kGsnp, &dev);
  const auto soapsnp = run_genome(config_, EngineKind::kSoapsnp);
  ASSERT_EQ(gsnp.output_files.size(), soapsnp.output_files.size());
  for (std::size_t c = 0; c < gsnp.output_files.size(); ++c) {
    const auto report =
        compare_output_files(gsnp.output_files[c], soapsnp.output_files[c]);
    EXPECT_TRUE(report.identical)
        << config_.chromosomes[c].name << ": " << report.detail;
  }
}

TEST_F(GenomePipeline, GsnpEngineRequiresDevice) {
  EXPECT_THROW(run_genome(config_, EngineKind::kGsnp, nullptr), Error);
}

TEST_F(GenomePipeline, EngineNames) {
  EXPECT_STREQ(engine_name(EngineKind::kSoapsnp), "soapsnp");
  EXPECT_STREQ(engine_name(EngineKind::kGsnpCpu), "gsnp_cpu");
  EXPECT_STREQ(engine_name(EngineKind::kGsnp), "gsnp");
}

}  // namespace
}  // namespace gsnp::core
