// Tests for the whole-genome driver (multi-chromosome runs) and p_matrix
// serialization.

#include <gtest/gtest.h>

#include <filesystem>

#include "src/common/crc32.hpp"
#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/core/consistency.hpp"
#include "src/core/genome_pipeline.hpp"
#include "src/core/pmatrix.hpp"
#include "src/core/run_manifest.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"

namespace gsnp::core {
namespace {

namespace fs = std::filesystem;

// ---- p_matrix serialization -------------------------------------------------

TEST(PMatrixIo, BitExactRoundTrip) {
  PMatrixCounter counter;
  Rng rng(3);
  for (int i = 0; i < 30000; ++i)
    counter.add(static_cast<int>(rng.uniform(kQualityLevels)),
                static_cast<int>(rng.uniform(kMaxReadLen)),
                static_cast<int>(rng.uniform(4)),
                static_cast<int>(rng.uniform(4)));
  const PMatrix pm = finalize_p_matrix(counter);

  const fs::path path = fs::temp_directory_path() / "gsnp_pm_test.bin";
  write_p_matrix(path, pm);
  const PMatrix loaded = read_p_matrix(path);
  // Bit-exact: reloading must preserve §IV-G consistency.
  EXPECT_EQ(loaded.flat(), pm.flat());
  fs::remove(path);
}

TEST(PMatrixIo, RejectsCorruptFiles) {
  const fs::path path = fs::temp_directory_path() / "gsnp_pm_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "GARBAGE!";
  }
  EXPECT_THROW(read_p_matrix(path), Error);
  fs::remove(path);
}

TEST(PMatrixIo, RejectsTruncatedFiles) {
  const PMatrix pm = finalize_p_matrix(PMatrixCounter{});
  const fs::path path = fs::temp_directory_path() / "gsnp_pm_trunc.bin";
  write_p_matrix(path, pm);
  fs::resize_file(path, fs::file_size(path) / 2);
  EXPECT_THROW(read_p_matrix(path), Error);
  fs::remove(path);
}

// ---- genome pipeline -----------------------------------------------------------

class GenomePipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_pipeline_test";
    fs::create_directories(dir_);
    for (int c = 0; c < 3; ++c) {
      genome::GenomeSpec gspec;
      gspec.name = "chr" + std::to_string(c + 1);
      gspec.length = 8'000 - 1'000 * static_cast<u64>(c);
      gspec.seed = 40 + static_cast<u64>(c);
      refs_.push_back(genome::generate_reference(gspec));
    }
    for (int c = 0; c < 3; ++c) {
      genome::SnpPlantSpec pspec;
      pspec.seed = 50 + static_cast<u64>(c);
      const auto snps = genome::plant_snps(refs_[c], pspec);
      const genome::Diploid individual(refs_[c], snps);
      reads::ReadSimSpec rspec;
      rspec.depth = 6.0;
      rspec.seed = 60 + static_cast<u64>(c);
      const fs::path align = dir_ / (refs_[c].name() + ".soap");
      reads::write_alignment_file(align,
                                  reads::simulate_reads(individual, rspec));

      ChromosomeJob job;
      job.name = refs_[c].name();
      job.alignment_file = align;
      job.reference = &refs_[c];
      config_.chromosomes.push_back(job);
    }
    config_.output_dir = dir_ / "out";
    config_.window_size = 2'048;
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::vector<genome::Reference> refs_;
  GenomeRunConfig config_;
};

TEST_F(GenomePipeline, RunsAllChromosomes) {
  device::Device dev;
  const GenomeReport report = run_genome(config_, EngineKind::kGsnp, &dev);
  ASSERT_EQ(report.per_chromosome.size(), 3u);
  EXPECT_EQ(report.total_sites, 8'000u + 7'000 + 6'000);
  for (const auto& path : report.output_files) EXPECT_TRUE(fs::exists(path));
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GT(report.total_output_bytes, 0u);
}

TEST_F(GenomePipeline, EnginesAgreeAcrossAllChromosomes) {
  device::Device dev;
  const auto gsnp = run_genome(config_, EngineKind::kGsnp, &dev);
  const auto soapsnp = run_genome(config_, EngineKind::kSoapsnp);
  ASSERT_EQ(gsnp.output_files.size(), soapsnp.output_files.size());
  for (std::size_t c = 0; c < gsnp.output_files.size(); ++c) {
    const auto report =
        compare_output_files(gsnp.output_files[c], soapsnp.output_files[c]);
    EXPECT_TRUE(report.identical)
        << config_.chromosomes[c].name << ": " << report.detail;
  }
}

TEST_F(GenomePipeline, GsnpEngineRequiresDevice) {
  EXPECT_THROW(run_genome(config_, EngineKind::kGsnp, nullptr), Error);
}

TEST_F(GenomePipeline, EngineNames) {
  EXPECT_STREQ(engine_name(EngineKind::kSoapsnp), "soapsnp");
  EXPECT_STREQ(engine_name(EngineKind::kGsnpCpu), "gsnp_cpu");
  EXPECT_STREQ(engine_name(EngineKind::kGsnp), "gsnp");
  EXPECT_EQ(engine_kind_from_name("gsnp"), EngineKind::kGsnp);
  EXPECT_EQ(engine_kind_from_name("gsnp_cpu"), EngineKind::kGsnpCpu);
  EXPECT_EQ(engine_kind_from_name("soapsnp"), EngineKind::kSoapsnp);
  EXPECT_EQ(engine_kind_from_name("cuda"), std::nullopt);
}

TEST_F(GenomePipeline, WritesVerifiableManifest) {
  device::Device dev;
  const GenomeReport report = run_genome(config_, EngineKind::kGsnp, &dev);
  ASSERT_TRUE(fs::exists(report.manifest_file));
  const RunManifest manifest = read_run_manifest(report.manifest_file);
  EXPECT_EQ(manifest.engine, "gsnp");
  ASSERT_EQ(manifest.chromosomes.size(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    const ManifestEntry& e = manifest.chromosomes[c];
    EXPECT_EQ(e.name, config_.chromosomes[c].name);
    EXPECT_EQ(e.status, "done");
    EXPECT_EQ(e.requested, "gsnp");
    EXPECT_EQ(e.engine, "gsnp");
    EXPECT_FALSE(e.degraded);
    EXPECT_EQ(e.attempts, 1);
    // The recorded CRC matches the bytes on disk (resume trusts this).
    EXPECT_EQ(crc32_file(config_.output_dir / e.output), e.output_crc32);
    EXPECT_GT(e.sites, 0u);
  }
}

// ---- run manifest serialization -------------------------------------------------

TEST(RunManifestIo, RoundTripsAllFields) {
  RunManifest manifest;
  manifest.engine = "gsnp";
  ManifestEntry e;
  e.name = "chr\"weird\\name\"\n";  // exercises JSON escaping
  e.status = "failed";
  e.requested = "gsnp";
  e.engine = "gsnp_cpu";
  e.degraded = true;
  e.attempts = 3;
  e.output = "chr1.gsnp.snp";
  e.output_bytes = 12345;
  e.output_crc32 = 0xDEADBEEF;
  e.sites = 8000;
  e.error = "injected device OOM\tat allocation #7";
  manifest.chromosomes.push_back(e);

  const fs::path path = fs::temp_directory_path() / "gsnp_manifest_test.json";
  write_run_manifest(path, manifest);
  const RunManifest loaded = read_run_manifest(path);
  EXPECT_EQ(loaded.version, 1);
  EXPECT_EQ(loaded.engine, "gsnp");
  ASSERT_EQ(loaded.chromosomes.size(), 1u);
  const ManifestEntry& l = loaded.chromosomes[0];
  EXPECT_EQ(l.name, e.name);
  EXPECT_EQ(l.status, e.status);
  EXPECT_EQ(l.requested, e.requested);
  EXPECT_EQ(l.engine, e.engine);
  EXPECT_EQ(l.degraded, e.degraded);
  EXPECT_EQ(l.attempts, e.attempts);
  EXPECT_EQ(l.output, e.output);
  EXPECT_EQ(l.output_bytes, e.output_bytes);
  EXPECT_EQ(l.output_crc32, e.output_crc32);
  EXPECT_EQ(l.sites, e.sites);
  EXPECT_EQ(l.error, e.error);
  EXPECT_NE(loaded.find(e.name), nullptr);
  EXPECT_EQ(loaded.find("chrMissing"), nullptr);
  fs::remove(path);
}

TEST(RunManifestIo, RejectsMalformedJson) {
  const fs::path path = fs::temp_directory_path() / "gsnp_manifest_bad.json";
  for (const char* text :
       {"", "{", "{\"version\": 1", "[1,2,3]", "{\"version\": 99, "
        "\"engine\": \"gsnp\", \"chromosomes\": []}",
        "{\"engine\": \"gsnp\", \"chromosomes\": []}"}) {
    std::ofstream(path) << text;
    EXPECT_THROW(read_run_manifest(path), Error) << "input: " << text;
  }
  fs::remove(path);
}

}  // namespace
}  // namespace gsnp::core
