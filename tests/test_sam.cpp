// Tests for the SAM-format subset: record conversion (both strands, soft
// clips, tags), streaming reader, and engine-result equivalence between SAM
// and native SOAP input.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/core/consistency.hpp"
#include "src/core/engine.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/sam.hpp"
#include "src/reads/simulator.hpp"

namespace gsnp::reads {
namespace {

namespace fs = std::filesystem;

AlignmentRecord forward_record() {
  AlignmentRecord rec;
  rec.read_id = "r1";
  rec.seq = "ACGTA";
  rec.qual = "IJKLM";
  rec.hit_count = 3;
  rec.pair_tag = 'a';
  rec.length = 5;
  rec.strand = Strand::kForward;
  rec.chr_name = "chrZ";
  rec.pos = 99;
  return rec;
}

TEST(Sam, ForwardRoundTrip) {
  const AlignmentRecord rec = forward_record();
  const auto parsed = parse_sam_record(format_sam_record(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, rec);
}

TEST(Sam, ReverseRoundTrip) {
  AlignmentRecord rec = forward_record();
  rec.strand = Strand::kReverse;
  rec.pair_tag = 'b';
  const std::string line = format_sam_record(rec);
  // SAM stores the forward-strand sequence: reverse complement of the read.
  EXPECT_NE(line.find("TACGT"), std::string::npos);
  const auto parsed = parse_sam_record(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, rec);
}

TEST(Sam, FlagBitsInterpreted) {
  // Unmapped / secondary / supplementary records are skipped.
  EXPECT_FALSE(parse_sam_record("r\t4\tchr\t100\t60\t5M\t*\t0\t0\tACGTA\tIIIII")
                   .has_value());
  EXPECT_FALSE(
      parse_sam_record("r\t256\tchr\t100\t60\t5M\t*\t0\t0\tACGTA\tIIIII")
          .has_value());
  EXPECT_FALSE(
      parse_sam_record("r\t2048\tchr\t100\t60\t5M\t*\t0\t0\tACGTA\tIIIII")
          .has_value());
  EXPECT_TRUE(parse_sam_record("r\t0\tchr\t100\t60\t5M\t*\t0\t0\tACGTA\tIIIII")
                  .has_value());
}

TEST(Sam, SoftClipsTrimmed) {
  const auto rec =
      parse_sam_record("r\t0\tchr\t100\t60\t2S3M\t*\t0\t0\tNNACG\t##III");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->seq, "ACG");
  EXPECT_EQ(rec->length, 3);
  EXPECT_EQ(rec->pos, 99u);
}

TEST(Sam, GappedAlignmentsSkipped) {
  EXPECT_FALSE(
      parse_sam_record("r\t0\tchr\t100\t60\t2M1D3M\t*\t0\t0\tACGTA\tIIIII")
          .has_value());
  EXPECT_FALSE(
      parse_sam_record("r\t0\tchr\t100\t60\t2M1I2M\t*\t0\t0\tACGTA\tIIIII")
          .has_value());
}

TEST(Sam, NhTagSetsHitCount) {
  const auto rec = parse_sam_record(
      "r\t0\tchr\t100\t60\t5M\t*\t0\t0\tACGTA\tIIIII\tAS:i:0\tNH:i:7");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->hit_count, 7u);
}

TEST(Sam, MissingQualBecomesQ0) {
  const auto rec =
      parse_sam_record("r\t0\tchr\t100\t60\t3M\t*\t0\t0\tACG\t*");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->qual, "!!!");
}

TEST(Sam, MalformedLineThrows) {
  EXPECT_THROW(parse_sam_record("too\tfew"), Error);
  EXPECT_THROW(parse_sam_record("r\t0\tchr\t0\t60\t3M\t*\t0\t0\tACG\tIII"),
               Error);  // 0-based pos
}

TEST(SamCigar, RejectsMissingZeroOrStrayCounts) {
  u32 m = 0, clip = 0;
  EXPECT_EQ(parse_simple_cigar("M", m, clip), CigarStatus::kMalformed);
  EXPECT_EQ(parse_simple_cigar("0M", m, clip), CigarStatus::kMalformed);
  EXPECT_EQ(parse_simple_cigar("2S0M", m, clip), CigarStatus::kMalformed);
  EXPECT_EQ(parse_simple_cigar("5M3", m, clip), CigarStatus::kMalformed);
  EXPECT_EQ(parse_simple_cigar("1?1M", m, clip), CigarStatus::kMalformed);
}

TEST(SamCigar, GuardsU32Overflow) {
  u32 m = 0, clip = 0;
  EXPECT_EQ(parse_simple_cigar("4294967296M", m, clip),
            CigarStatus::kOverflow);
  EXPECT_EQ(parse_simple_cigar("99999999999999999999M", m, clip),
            CigarStatus::kOverflow);
  EXPECT_EQ(parse_simple_cigar("4000000000S4000000000S5M", m, clip),
            CigarStatus::kOverflow);  // left-clip accumulation
}

TEST(SamCigar, AcceptsClippedSingleRun) {
  u32 m = 0, clip = 0;
  EXPECT_EQ(parse_simple_cigar("2S3M1S", m, clip), CigarStatus::kSimple);
  EXPECT_EQ(m, 3u);
  EXPECT_EQ(clip, 2u);
  EXPECT_EQ(parse_simple_cigar("*", m, clip), CigarStatus::kUnsupported);
  EXPECT_EQ(parse_simple_cigar("2M1D3M", m, clip), CigarStatus::kUnsupported);
}

/// The reason code a malformed SAM line is rejected with.
IngestReason sam_reason(const std::string& line) {
  try {
    parse_sam_record(line);
  } catch (const ParseError& e) {
    return e.reason();
  }
  ADD_FAILURE() << "no ParseError for: " << line;
  return IngestReason::kCount;
}

TEST(Sam, ReasonCodeTaxonomy) {
  EXPECT_EQ(sam_reason("too\tfew"), IngestReason::kTruncatedRecord);
  EXPECT_EQ(sam_reason("r\tx\tchr\t100\t60\t3M\t*\t0\t0\tACG\tIII"),
            IngestReason::kBadInteger);
  EXPECT_EQ(sam_reason(
                "r\t99999999999999999999\tchr\t100\t60\t3M\t*\t0\t0\tACG\tIII"),
            IngestReason::kIntegerOverflow);
  EXPECT_EQ(sam_reason("r\t0\tchr\t100\t60\t0M\t*\t0\t0\tACG\tIII"),
            IngestReason::kBadCigar);
  EXPECT_EQ(sam_reason("r\t0\tchr\t100\t60\t4294967296M\t*\t0\t0\tACG\tIII"),
            IngestReason::kCigarOverflow);
  // A match run that fits u32 but overflows the u16 record length.
  EXPECT_EQ(sam_reason("r\t0\tchr\t100\t60\t70000M\t*\t0\t0\tACG\tIII"),
            IngestReason::kCigarOverflow);
  // Fits u16 but exceeds the 256-base engine limit (kMaxReadLen guard).
  EXPECT_EQ(sam_reason("r\t0\tchr\t100\t60\t300M\t*\t0\t0\tACG\tIII"),
            IngestReason::kReadTooLong);
  EXPECT_EQ(sam_reason("r\t0\tchr\t0\t60\t3M\t*\t0\t0\tACG\tIII"),
            IngestReason::kPositionOutOfRange);
  EXPECT_EQ(sam_reason("r\t0\tchr\t100\t60\t3M\t*\t0\t0\tACGT\tIII"),
            IngestReason::kLengthMismatch);
  EXPECT_EQ(sam_reason("r\t0\tchr\t100\t60\t3M\t*\t0\t0\tA#G\tIII"),
            IngestReason::kBadField);  // non-base character
  EXPECT_EQ(sam_reason("r\t0\tchr\t100\t60\t3M\t*\t0\t0\tACG\tI I"),
            IngestReason::kBadField);  // quality byte below '!'
  EXPECT_EQ(sam_reason("r\t0\t*\t100\t60\t3M\t*\t0\t0\tACG\tIII"),
            IngestReason::kBadField);  // mapped record without RNAME
}

TEST(Sam, PositionBoundsCheckedAgainstReference) {
  ParseContext ctx;
  ctx.reference_length = 100;
  // [97, 100) fits exactly; [98, 101) extends past the end.
  EXPECT_TRUE(
      parse_sam_record("r\t0\tchr\t98\t60\t3M\t*\t0\t0\tACG\tIII", ctx)
          .has_value());
  try {
    parse_sam_record("r\t0\tchr\t99\t60\t3M\t*\t0\t0\tACG\tIII", ctx);
    ADD_FAILURE() << "no ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.reason(), IngestReason::kPositionOutOfRange);
  }
}

TEST(Sam, SeededPropertyRoundTrip) {
  // Any record the writer can produce must survive format -> parse exactly,
  // across strands, lengths, qualities, and hit counts.
  Rng rng(20260806);
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  for (int i = 0; i < 200; ++i) {
    AlignmentRecord rec;
    rec.read_id = "read" + std::to_string(i);
    const u32 len = 1 + static_cast<u32>(rng.uniform(255));
    for (u32 j = 0; j < len; ++j) {
      rec.seq.push_back(kBases[rng.uniform(4)]);
      rec.qual.push_back(static_cast<char>('!' + rng.uniform(64)));
    }
    rec.length = static_cast<u16>(len);
    rec.hit_count = 1 + static_cast<u32>(rng.uniform(999));
    rec.pair_tag = rng.bernoulli(0.5) ? 'a' : 'b';
    rec.strand = rng.bernoulli(0.5) ? Strand::kForward : Strand::kReverse;
    rec.chr_name = "chrP";
    rec.pos = 1 + rng.uniform(1'000'000);
    const auto parsed = parse_sam_record(format_sam_record(rec));
    ASSERT_TRUE(parsed.has_value()) << "record " << i;
    EXPECT_EQ(*parsed, rec) << "record " << i;
  }
}

class SamFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_sam_test";
    fs::create_directories(dir_);
    genome::GenomeSpec gspec;
    gspec.name = "chrS";
    gspec.length = 15'000;
    ref_ = genome::generate_reference(gspec);
    genome::SnpPlantSpec pspec;
    const auto snps = genome::plant_snps(ref_, pspec);
    const genome::Diploid individual(ref_, snps);
    ReadSimSpec rspec;
    rspec.depth = 6.0;
    records_ = simulate_reads(individual, rspec);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  genome::Reference ref_;
  std::vector<AlignmentRecord> records_;
};

TEST_F(SamFiles, FileRoundTripPreservesRecords) {
  write_sam_file(dir_ / "a.sam", records_, ref_.name(), ref_.size());
  SamReader reader(dir_ / "a.sam");
  std::size_t i = 0;
  while (auto rec = reader.next()) {
    ASSERT_LT(i, records_.size());
    EXPECT_EQ(*rec, records_[i]) << "record " << i;
    ++i;
  }
  EXPECT_EQ(i, records_.size());
  EXPECT_EQ(reader.skipped(), 0u);
}

TEST_F(SamFiles, SamInputGivesIdenticalCalls) {
  // The integration property: calling from SAM-converted input must produce
  // exactly the rows the native SOAP path produces.
  write_alignment_file(dir_ / "a.soap", records_);
  write_sam_file(dir_ / "a.sam", records_, ref_.name(), ref_.size());
  const u64 n = sam_to_soap(dir_ / "a.sam", dir_ / "converted.soap");
  EXPECT_EQ(n, records_.size());

  core::EngineConfig config;
  config.reference = &ref_;
  config.temp_file = dir_ / "t.tmp";

  config.alignment_file = dir_ / "a.soap";
  config.output_file = dir_ / "native.snp";
  core::run_gsnp_cpu(config);

  config.alignment_file = dir_ / "converted.soap";
  config.output_file = dir_ / "fromsam.snp";
  core::run_gsnp_cpu(config);

  const auto report =
      core::compare_output_files(dir_ / "native.snp", dir_ / "fromsam.snp");
  EXPECT_TRUE(report.identical) << report.detail;
}

TEST_F(SamFiles, UnsortedSamRejectedByConverter) {
  std::vector<AlignmentRecord> unsorted = {records_[10], records_[2]};
  write_sam_file(dir_ / "u.sam", unsorted, ref_.name(), ref_.size());
  EXPECT_THROW(sam_to_soap(dir_ / "u.sam", dir_ / "u.soap"), Error);
}

TEST_F(SamFiles, UnsortedSamErrorNamesTheLine) {
  std::vector<AlignmentRecord> unsorted = {records_[10], records_[2]};
  write_sam_file(dir_ / "u.sam", unsorted, ref_.name(), ref_.size());
  try {
    sam_to_soap(dir_ / "u.sam", dir_ / "u.soap");
    ADD_FAILURE() << "no ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.reason(), IngestReason::kSortOrderViolation);
    // 3 header lines + 2 records: the violation is on line 5.
    EXPECT_EQ(e.line(), 5u);
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos)
        << e.what();
  }
}

TEST_F(SamFiles, MultiChromosomeBlocksAccepted) {
  // chr order A then B with positions restarting is valid (chr, pos) order.
  std::ofstream out(dir_ / "m.sam");
  out << "@HD\tVN:1.6\tSO:coordinate\n"
      << "r1\t0\tchrA\t100\t60\t3M\t*\t0\t0\tACG\tIII\n"
      << "r2\t0\tchrA\t150\t60\t3M\t*\t0\t0\tACG\tIII\n"
      << "r3\t0\tchrB\t10\t60\t3M\t*\t0\t0\tACG\tIII\n";
  out.close();
  SamReader reader(dir_ / "m.sam");
  u64 n = 0;
  while (reader.next()) ++n;
  EXPECT_EQ(n, 3u);
  EXPECT_TRUE(reader.stats().clean());
}

TEST_F(SamFiles, ChromosomeReappearanceRejected) {
  std::ofstream out(dir_ / "r.sam");
  out << "r1\t0\tchrA\t100\t60\t3M\t*\t0\t0\tACG\tIII\n"
      << "r2\t0\tchrB\t10\t60\t3M\t*\t0\t0\tACG\tIII\n"
      << "r3\t0\tchrA\t200\t60\t3M\t*\t0\t0\tACG\tIII\n";
  out.close();
  SamReader reader(dir_ / "r.sam");
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_TRUE(reader.next().has_value());
  try {
    reader.next();
    ADD_FAILURE() << "no ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.reason(), IngestReason::kSortOrderViolation);
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST_F(SamFiles, ReaderSurfacesSkippedAndStats) {
  // One supported record, one unmapped, one secondary: skipped() == 2.
  std::ofstream out(dir_ / "s.sam");
  out << "@HD\tVN:1.6\tSO:coordinate\n"
      << "r1\t0\tchrA\t100\t60\t3M\t*\t0\t0\tACG\tIII\n"
      << "r2\t4\tchrA\t150\t60\t3M\t*\t0\t0\tACG\tIII\n"
      << "r3\t256\tchrA\t200\t60\t3M\t*\t0\t0\tACG\tIII\n";
  out.close();
  SamReader reader(dir_ / "s.sam");
  u64 n = 0;
  while (reader.next()) ++n;
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(reader.skipped(), 2u);
  EXPECT_EQ(reader.stats().records_ok, 1u);
  EXPECT_EQ(reader.stats().records_unsupported, 2u);
  EXPECT_EQ(reader.stats().records_quarantined, 0u);
  EXPECT_EQ(reader.stats().total(), 3u);

  IngestStats stats;
  sam_to_soap(dir_ / "s.sam", dir_ / "s.soap", {}, &stats);
  EXPECT_EQ(stats.records_unsupported, 2u);
  EXPECT_EQ(stats.records_ok, 1u);
}

}  // namespace
}  // namespace gsnp::reads
