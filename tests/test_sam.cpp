// Tests for the SAM-format subset: record conversion (both strands, soft
// clips, tags), streaming reader, and engine-result equivalence between SAM
// and native SOAP input.

#include <gtest/gtest.h>

#include <filesystem>

#include "src/common/error.hpp"
#include "src/core/consistency.hpp"
#include "src/core/engine.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/sam.hpp"
#include "src/reads/simulator.hpp"

namespace gsnp::reads {
namespace {

namespace fs = std::filesystem;

AlignmentRecord forward_record() {
  AlignmentRecord rec;
  rec.read_id = "r1";
  rec.seq = "ACGTA";
  rec.qual = "IJKLM";
  rec.hit_count = 3;
  rec.pair_tag = 'a';
  rec.length = 5;
  rec.strand = Strand::kForward;
  rec.chr_name = "chrZ";
  rec.pos = 99;
  return rec;
}

TEST(Sam, ForwardRoundTrip) {
  const AlignmentRecord rec = forward_record();
  const auto parsed = parse_sam_record(format_sam_record(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, rec);
}

TEST(Sam, ReverseRoundTrip) {
  AlignmentRecord rec = forward_record();
  rec.strand = Strand::kReverse;
  rec.pair_tag = 'b';
  const std::string line = format_sam_record(rec);
  // SAM stores the forward-strand sequence: reverse complement of the read.
  EXPECT_NE(line.find("TACGT"), std::string::npos);
  const auto parsed = parse_sam_record(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, rec);
}

TEST(Sam, FlagBitsInterpreted) {
  // Unmapped / secondary / supplementary records are skipped.
  EXPECT_FALSE(parse_sam_record("r\t4\tchr\t100\t60\t5M\t*\t0\t0\tACGTA\tIIIII")
                   .has_value());
  EXPECT_FALSE(
      parse_sam_record("r\t256\tchr\t100\t60\t5M\t*\t0\t0\tACGTA\tIIIII")
          .has_value());
  EXPECT_FALSE(
      parse_sam_record("r\t2048\tchr\t100\t60\t5M\t*\t0\t0\tACGTA\tIIIII")
          .has_value());
  EXPECT_TRUE(parse_sam_record("r\t0\tchr\t100\t60\t5M\t*\t0\t0\tACGTA\tIIIII")
                  .has_value());
}

TEST(Sam, SoftClipsTrimmed) {
  const auto rec =
      parse_sam_record("r\t0\tchr\t100\t60\t2S3M\t*\t0\t0\tNNACG\t##III");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->seq, "ACG");
  EXPECT_EQ(rec->length, 3);
  EXPECT_EQ(rec->pos, 99u);
}

TEST(Sam, GappedAlignmentsSkipped) {
  EXPECT_FALSE(
      parse_sam_record("r\t0\tchr\t100\t60\t2M1D3M\t*\t0\t0\tACGTA\tIIIII")
          .has_value());
  EXPECT_FALSE(
      parse_sam_record("r\t0\tchr\t100\t60\t2M1I2M\t*\t0\t0\tACGTA\tIIIII")
          .has_value());
}

TEST(Sam, NhTagSetsHitCount) {
  const auto rec = parse_sam_record(
      "r\t0\tchr\t100\t60\t5M\t*\t0\t0\tACGTA\tIIIII\tAS:i:0\tNH:i:7");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->hit_count, 7u);
}

TEST(Sam, MissingQualBecomesQ0) {
  const auto rec =
      parse_sam_record("r\t0\tchr\t100\t60\t3M\t*\t0\t0\tACG\t*");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->qual, "!!!");
}

TEST(Sam, MalformedLineThrows) {
  EXPECT_THROW(parse_sam_record("too\tfew"), Error);
  EXPECT_THROW(parse_sam_record("r\t0\tchr\t0\t60\t3M\t*\t0\t0\tACG\tIII"),
               Error);  // 0-based pos
}

class SamFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_sam_test";
    fs::create_directories(dir_);
    genome::GenomeSpec gspec;
    gspec.name = "chrS";
    gspec.length = 15'000;
    ref_ = genome::generate_reference(gspec);
    genome::SnpPlantSpec pspec;
    const auto snps = genome::plant_snps(ref_, pspec);
    const genome::Diploid individual(ref_, snps);
    ReadSimSpec rspec;
    rspec.depth = 6.0;
    records_ = simulate_reads(individual, rspec);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  genome::Reference ref_;
  std::vector<AlignmentRecord> records_;
};

TEST_F(SamFiles, FileRoundTripPreservesRecords) {
  write_sam_file(dir_ / "a.sam", records_, ref_.name(), ref_.size());
  SamReader reader(dir_ / "a.sam");
  std::size_t i = 0;
  while (auto rec = reader.next()) {
    ASSERT_LT(i, records_.size());
    EXPECT_EQ(*rec, records_[i]) << "record " << i;
    ++i;
  }
  EXPECT_EQ(i, records_.size());
  EXPECT_EQ(reader.skipped(), 0u);
}

TEST_F(SamFiles, SamInputGivesIdenticalCalls) {
  // The integration property: calling from SAM-converted input must produce
  // exactly the rows the native SOAP path produces.
  write_alignment_file(dir_ / "a.soap", records_);
  write_sam_file(dir_ / "a.sam", records_, ref_.name(), ref_.size());
  const u64 n = sam_to_soap(dir_ / "a.sam", dir_ / "converted.soap");
  EXPECT_EQ(n, records_.size());

  core::EngineConfig config;
  config.reference = &ref_;
  config.temp_file = dir_ / "t.tmp";

  config.alignment_file = dir_ / "a.soap";
  config.output_file = dir_ / "native.snp";
  core::run_gsnp_cpu(config);

  config.alignment_file = dir_ / "converted.soap";
  config.output_file = dir_ / "fromsam.snp";
  core::run_gsnp_cpu(config);

  const auto report =
      core::compare_output_files(dir_ / "native.snp", dir_ / "fromsam.snp");
  EXPECT_TRUE(report.identical) << report.detail;
}

TEST_F(SamFiles, UnsortedSamRejectedByConverter) {
  std::vector<AlignmentRecord> unsorted = {records_[10], records_[2]};
  write_sam_file(dir_ / "u.sam", unsorted, ref_.name(), ref_.size());
  EXPECT_THROW(sam_to_soap(dir_ / "u.sam", dir_ / "u.soap"), Error);
}

}  // namespace
}  // namespace gsnp::reads
