// Tests for src/obs/profiler: per-launch records, the exact sum-to-aggregate
// guarantee (memops attribution, multi-block launches, the
// cancellation-after-throw path), roofline classification, non-empty kernel
// names across the gsnp engine, and bit-identical JSON for identical runs.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/core/engine.hpp"
#include "src/device/device.hpp"
#include "src/device/perf_model.hpp"
#include "src/genome/synthetic.hpp"
#include "src/obs/profiler.hpp"
#include "src/reads/simulator.hpp"

namespace gsnp::obs {
namespace {

namespace fs = std::filesystem;

using device::Access;
using device::BlockContext;
using device::Device;
using device::DeviceCounters;
using device::ThreadContext;

/// Field-wise exact equality with a named context on failure.
void expect_counters_eq(const DeviceCounters& a, const DeviceCounters& b,
                        const std::string& what) {
  EXPECT_EQ(a.instructions, b.instructions) << what;
  EXPECT_EQ(a.global_loads_coalesced, b.global_loads_coalesced) << what;
  EXPECT_EQ(a.global_loads_random, b.global_loads_random) << what;
  EXPECT_EQ(a.global_stores_coalesced, b.global_stores_coalesced) << what;
  EXPECT_EQ(a.global_stores_random, b.global_stores_random) << what;
  EXPECT_EQ(a.global_load_bytes_coalesced, b.global_load_bytes_coalesced)
      << what;
  EXPECT_EQ(a.global_load_bytes_random, b.global_load_bytes_random) << what;
  EXPECT_EQ(a.global_store_bytes_coalesced, b.global_store_bytes_coalesced)
      << what;
  EXPECT_EQ(a.global_store_bytes_random, b.global_store_bytes_random) << what;
  EXPECT_EQ(a.shared_loads, b.shared_loads) << what;
  EXPECT_EQ(a.shared_stores, b.shared_stores) << what;
  EXPECT_EQ(a.shared_bytes, b.shared_bytes) << what;
  EXPECT_EQ(a.h2d_bytes, b.h2d_bytes) << what;
  EXPECT_EQ(a.d2h_bytes, b.d2h_bytes) << what;
  EXPECT_EQ(a.kernel_launches, b.kernel_launches) << what;
}

/// Sum of every per-kernel row of a report.
DeviceCounters kernel_sum(const ProfileReport& rep) {
  DeviceCounters sum;
  for (const KernelStats& st : rep.kernels) sum += st.total;
  return sum;
}

// ---- recording -------------------------------------------------------------

TEST(Profiler, RecordsNamedLaunchWithExactDelta) {
  Device dev;
  Profiler profiler(dev);
  auto buf = dev.alloc<u32>(1024);
  dev.launch("fill_ones", 4, 256, [&](BlockContext& blk) {
    blk.threads([&](ThreadContext& t) {
      t.gstore(buf, t.global_tid(), 1u, Access::kCoalesced);
    });
  });

  const auto records = profiler.records();
  ASSERT_EQ(records.size(), 1u);
  const KernelRecord& rec = records[0];
  EXPECT_EQ(rec.name, "fill_ones");
  EXPECT_EQ(rec.grid_dim, 4u);
  EXPECT_EQ(rec.block_dim, 256u);
  EXPECT_FALSE(rec.failed);
  EXPECT_EQ(rec.delta.kernel_launches, 1u);
  EXPECT_EQ(rec.delta.global_stores_coalesced, 1024u);
  EXPECT_EQ(rec.delta.global_store_bytes_coalesced, 1024u * sizeof(u32));
  EXPECT_EQ(rec.allocated_bytes, 1024u * sizeof(u32));
  EXPECT_EQ(rec.peak_global_bytes, 1024u * sizeof(u32));
  EXPECT_GT(rec.modeled_sec, 0.0);

  // Attached at a zero device, no memops happened: the report's kernel rows
  // sum to the device aggregate with no "(memops)" row needed for loads and
  // stores inside the launch.
  const ProfileReport rep = profiler.report();
  expect_counters_eq(kernel_sum(rep), dev.counters(), "fill_ones sum");
  expect_counters_eq(rep.total, dev.counters(), "fill_ones total");
}

TEST(Profiler, MemopsRowCapturesFillAndTransfers) {
  Device dev;
  Profiler profiler(dev);

  // Counter movement with no launch at all: upload, fill, download.
  std::vector<u32> host(512, 7);
  auto buf = dev.to_device(std::span<const u32>(host));
  dev.fill(buf, 9u);
  (void)dev.to_host(buf);

  const ProfileReport rep = profiler.report();
  ASSERT_EQ(rep.kernels.size(), 1u);
  EXPECT_EQ(rep.kernels[0].name, kMemOpsName);
  EXPECT_EQ(rep.kernels[0].total.h2d_bytes, 512u * sizeof(u32));
  EXPECT_EQ(rep.kernels[0].total.d2h_bytes, 512u * sizeof(u32));
  EXPECT_EQ(rep.kernels[0].total.global_stores_coalesced, 512u);
  expect_counters_eq(kernel_sum(rep), rep.total, "memops-only sum");
  EXPECT_EQ(rep.launches, 0u);
  EXPECT_EQ(rep.peak_global_bytes, 512u * sizeof(u32));
}

TEST(Profiler, UnnamedLaunchAggregatesUnderPlaceholder) {
  Device dev;
  Profiler profiler(dev);
  dev.launch(2, 32, [&](BlockContext& blk) {
    blk.threads([&](ThreadContext& t) { t.inst(); });
  });
  const ProfileReport rep = profiler.report();
  ASSERT_EQ(rep.kernels.size(), 1u);
  EXPECT_EQ(rep.kernels[0].name, kUnnamedName);
  EXPECT_EQ(rep.kernels[0].launches, 1u);
}

TEST(Profiler, CancelledLaunchStillSumsExactly) {
  // The PR 3 cancellation path: one block throws, remaining blocks are
  // skipped, shards of the blocks that ran are still reduced.  The profiler
  // must see the partial launch (failed=true) and keep the sum exact.
  Device dev;
  Profiler profiler(dev);
  constexpr u32 kGrid = 8192;
  auto buf = dev.alloc<u32>(kGrid);
  EXPECT_THROW(
      dev.launch("boom", kGrid, 1, [&](BlockContext& blk) {
        // Store first so the partial launch always has counter movement,
        // then abort early (block 16 sits in the second scheduling chunk, so
        // thousands of later blocks get cancelled).
        blk.threads([&](ThreadContext& t) {
          t.gstore(buf, blk.block_idx(), 1u, Access::kCoalesced);
        });
        if (blk.block_idx() == 16) throw std::runtime_error("injected");
      }),
      std::runtime_error);

  const auto records = profiler.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "boom");
  EXPECT_TRUE(records[0].failed);
  // Some blocks ran (their stores are in the delta), not all of them.
  EXPECT_GT(records[0].delta.global_stores_coalesced, 0u);
  EXPECT_LT(records[0].delta.global_stores_coalesced, kGrid);

  const ProfileReport rep = profiler.report();
  ASSERT_FALSE(rep.kernels.empty());
  EXPECT_EQ(rep.kernels[0].failed +
                (rep.kernels.size() > 1 ? rep.kernels[1].failed : 0),
            1u);
  expect_counters_eq(kernel_sum(rep), dev.counters(),
                     "cancelled launch sum");
}

TEST(Profiler, AttachRespectsPreexistingCounters) {
  // Counters that moved before attach belong to nobody: the report covers
  // only movement since attach.
  Device dev;
  auto buf = dev.alloc<u32>(64);
  dev.fill(buf, 1u);  // pre-attach movement

  Profiler profiler(dev);
  dev.launch("k", 1, 64, [&](BlockContext& blk) {
    blk.threads([&](ThreadContext& t) { t.inst(); });
  });
  const ProfileReport rep = profiler.report();
  const DeviceCounters expected =
      device::counters_delta(DeviceCounters{}, dev.counters());
  EXPECT_LT(rep.total.global_stores_coalesced,
            expected.global_stores_coalesced + 1);  // fill not re-counted
  EXPECT_EQ(rep.total.kernel_launches, 1u);
  expect_counters_eq(kernel_sum(rep), rep.total, "post-attach sum");
}

// ---- roofline classification ----------------------------------------------

TEST(Roofline, ClassifiesByDominantModelTerm) {
  const device::PerfModel m;
  DeviceCounters c;
  EXPECT_EQ(classify_roofline(c, m), RooflineBound::kNone);

  c = DeviceCounters{};
  c.instructions = 1'000'000'000;
  EXPECT_EQ(classify_roofline(c, m), RooflineBound::kCompute);

  c = DeviceCounters{};
  c.global_load_bytes_coalesced = 1'000'000'000;
  EXPECT_EQ(classify_roofline(c, m), RooflineBound::kCoalescedBandwidth);

  c = DeviceCounters{};
  c.global_store_bytes_random = 1'000'000;
  EXPECT_EQ(classify_roofline(c, m), RooflineBound::kRandomAccess);

  // Random bytes are ~25x costlier than coalesced at the default rates:
  // equal byte counts classify as random-access-bound.
  c.global_load_bytes_coalesced = 1'000'000;
  EXPECT_EQ(classify_roofline(c, m), RooflineBound::kRandomAccess);
}

TEST(Roofline, ArithmeticIntensityIsInstPerGlobalByte) {
  DeviceCounters c;
  c.instructions = 600;
  c.global_load_bytes_coalesced = 100;
  c.global_store_bytes_random = 100;
  EXPECT_DOUBLE_EQ(arithmetic_intensity(c), 3.0);
  c = DeviceCounters{};
  c.instructions = 42;  // zero bytes stays finite
  EXPECT_DOUBLE_EQ(arithmetic_intensity(c), 42.0);
}

// ---- the gsnp engine end to end --------------------------------------------

class ProfiledEngine : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_profiler_test";
    fs::create_directories(dir_);
    genome::GenomeSpec gspec;
    gspec.name = "chrT";
    gspec.length = 12'000;
    ref_ = genome::generate_reference(gspec);
    const auto snps = plant_snps(ref_, {});
    const genome::Diploid individual(ref_, snps);
    reads::ReadSimSpec rspec;
    rspec.depth = 8.0;
    reads::write_alignment_file(dir_ / "a.soap",
                                reads::simulate_reads(individual, rspec));
    config_.alignment_file = dir_ / "a.soap";
    config_.reference = &ref_;
    config_.temp_file = dir_ / "a.tmp";
    config_.window_size = 4'096;
  }
  void TearDown() override { fs::remove_all(dir_); }

  ProfileReport run_profiled(const fs::path& out) {
    config_.output_file = out;
    Device dev;
    Profiler profiler(dev);
    (void)core::run_gsnp(config_, dev);
    ProfileReport rep = profiler.report();
    // The report must account for the device's whole lifetime (profiler
    // attached before any engine work).
    expect_counters_eq(rep.total, dev.counters(), "report total");
    EXPECT_EQ(rep.peak_global_bytes, dev.peak_allocated_bytes());
    return rep;
  }

  fs::path dir_;
  genome::Reference ref_;
  core::EngineConfig config_;
};

TEST_F(ProfiledEngine, PerKernelCountersSumToDeviceAggregate) {
  const ProfileReport rep = run_profiled(dir_ / "out.bin");
  expect_counters_eq(kernel_sum(rep), rep.total, "engine kernel sum");
  EXPECT_GT(rep.launches, 0u);
  EXPECT_GT(rep.kernels.size(), 4u);  // likeli, posterior, sort, rle, memops
  EXPECT_GT(rep.modeled_sec, 0.0);
}

TEST_F(ProfiledEngine, EveryEngineKernelHasANonEmptyName) {
  const ProfileReport rep = run_profiled(dir_ / "out.bin");
  for (const KernelStats& st : rep.kernels) {
    EXPECT_FALSE(st.name.empty());
    EXPECT_NE(st.name, kUnnamedName) << "unnamed launch site in the engine";
  }
  // The paper's headline kernels are present by name.
  const auto has = [&](std::string_view name) {
    for (const KernelStats& st : rep.kernels)
      if (st.name == name) return true;
    return false;
  };
  EXPECT_TRUE(has("likelihood_comp"));
  EXPECT_TRUE(has("posterior_select"));
  EXPECT_TRUE(has(kMemOpsName));  // fills + transfers exist in every run
}

TEST_F(ProfiledEngine, IdenticalRunsProduceBitIdenticalProfileJson) {
  const auto read_file = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const ProfileReport rep_a = run_profiled(dir_ / "out_a.bin");
  write_profile_json(dir_ / "profile_a.json", rep_a);
  const ProfileReport rep_b = run_profiled(dir_ / "out_b.bin");
  write_profile_json(dir_ / "profile_b.json", rep_b);

  const std::string a = read_file(dir_ / "profile_a.json");
  const std::string b = read_file(dir_ / "profile_b.json");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "profile JSON must be bit-identical across identical runs";
}

TEST_F(ProfiledEngine, ProfileJsonRoundTrips) {
  const ProfileReport rep = run_profiled(dir_ / "out.bin");
  write_profile_json(dir_ / "profile.json", rep);
  const ProfileReport back = read_profile_json(dir_ / "profile.json");

  EXPECT_EQ(back.launches, rep.launches);
  EXPECT_EQ(back.peak_global_bytes, rep.peak_global_bytes);
  expect_counters_eq(back.total, rep.total, "round-trip total");
  ASSERT_EQ(back.kernels.size(), rep.kernels.size());
  for (std::size_t i = 0; i < rep.kernels.size(); ++i) {
    EXPECT_EQ(back.kernels[i].name, rep.kernels[i].name);
    EXPECT_EQ(back.kernels[i].launches, rep.kernels[i].launches);
    EXPECT_EQ(back.kernels[i].blocks, rep.kernels[i].blocks);
    EXPECT_EQ(back.kernels[i].peak_global_bytes,
              rep.kernels[i].peak_global_bytes);
    EXPECT_EQ(back.kernels[i].bound, rep.kernels[i].bound);
    expect_counters_eq(back.kernels[i].total, rep.kernels[i].total,
                       "round-trip kernel " + rep.kernels[i].name);
  }
}

TEST_F(ProfiledEngine, TableAndDiffRender) {
  const ProfileReport rep = run_profiled(dir_ / "out.bin");
  const std::string table = format_profile_table(rep);
  EXPECT_NE(table.find("likelihood_comp"), std::string::npos);
  EXPECT_NE(table.find("bound"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);

  const std::string diff = format_profile_diff(rep, rep, "a", "b");
  EXPECT_NE(diff.find("ratio"), std::string::npos);
  EXPECT_NE(diff.find("100"), std::string::npos);  // self-diff is 100%
}

}  // namespace
}  // namespace gsnp::obs
