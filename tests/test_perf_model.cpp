// Tests for src/device/perf_model: a golden hand-computed seconds value,
// the per-term breakdown the profiler's roofline classification relies on,
// monotonicity in every counter field, and the counters_delta round trip.

#include <gtest/gtest.h>

#include "src/device/device.hpp"
#include "src/device/perf_model.hpp"

namespace gsnp::device {
namespace {

/// Every u64 field of DeviceCounters, so field-sweeping tests cannot
/// silently miss one added later (a new field shows up in sizeof).
constexpr u64 DeviceCounters::* kAllFields[] = {
    &DeviceCounters::instructions,
    &DeviceCounters::global_loads_coalesced,
    &DeviceCounters::global_loads_random,
    &DeviceCounters::global_stores_coalesced,
    &DeviceCounters::global_stores_random,
    &DeviceCounters::global_load_bytes_coalesced,
    &DeviceCounters::global_load_bytes_random,
    &DeviceCounters::global_store_bytes_coalesced,
    &DeviceCounters::global_store_bytes_random,
    &DeviceCounters::shared_loads,
    &DeviceCounters::shared_stores,
    &DeviceCounters::shared_bytes,
    &DeviceCounters::h2d_bytes,
    &DeviceCounters::d2h_bytes,
    &DeviceCounters::kernel_launches,
};
static_assert(sizeof(DeviceCounters) ==
                  sizeof(kAllFields) / sizeof(kAllFields[0]) * sizeof(u64),
              "DeviceCounters gained a field; update kAllFields");

/// The subset of fields that carry a nonzero cost in the model (counts
/// without bytes are free: the model charges per byte, not per access).
constexpr u64 DeviceCounters::* kCostFields[] = {
    &DeviceCounters::instructions,
    &DeviceCounters::global_load_bytes_coalesced,
    &DeviceCounters::global_load_bytes_random,
    &DeviceCounters::global_store_bytes_coalesced,
    &DeviceCounters::global_store_bytes_random,
    &DeviceCounters::shared_bytes,
    &DeviceCounters::h2d_bytes,
    &DeviceCounters::d2h_bytes,
    &DeviceCounters::kernel_launches,
};

TEST(PerfModel, GoldenHandComputedSeconds) {
  // Each term sized to contribute exactly 1 ms at the default M2050 rates,
  // except instructions (whose rate is not a round number).
  DeviceCounters c;
  c.instructions = 1'000'000;              // 1e6 / (448 * 1.15e9) s
  c.global_load_bytes_coalesced = 41'000'000;   // +
  c.global_store_bytes_coalesced = 41'000'000;  // = 82 MB / 82 GB/s = 1 ms
  c.global_load_bytes_random = 1'600'000;       // +
  c.global_store_bytes_random = 1'600'000;      // = 3.2 MB / 3.2 GB/s = 1 ms
  c.shared_bytes = 1'000'000'000;          // 1 GB / 1000 GB/s = 1 ms
  c.h2d_bytes = 2'500'000;                 // +
  c.d2h_bytes = 2'500'000;                 // = 5 MB / 5 GB/s = 1 ms
  c.kernel_launches = 200;                 // 200 * 5 us = 1 ms

  const PerfModel m;
  const double inst_sec = 1.0e6 / (448.0 * 1.15e9);  // ~1.941e-6
  EXPECT_NEAR(m.seconds(c), 0.005 + inst_sec, 1e-12);

  const PerfModel::Terms t = m.terms(c);
  EXPECT_NEAR(t.instructions, inst_sec, 1e-15);
  EXPECT_NEAR(t.coalesced, 1e-3, 1e-12);
  EXPECT_NEAR(t.random, 1e-3, 1e-12);
  EXPECT_NEAR(t.shared, 1e-3, 1e-12);
  EXPECT_NEAR(t.transfer, 1e-3, 1e-12);
  EXPECT_NEAR(t.launch, 1e-3, 1e-12);
  EXPECT_DOUBLE_EQ(t.total(), m.seconds(c));
}

TEST(PerfModel, MonotoneInEveryCounterField) {
  // Base point with every field populated, so monotonicity is checked away
  // from zero as well.
  DeviceCounters base;
  int i = 1;
  for (auto field : kAllFields) base.*field = static_cast<u64>(1000 * i++);

  const PerfModel m;
  const double s0 = m.seconds(base);
  for (std::size_t f = 0; f < std::size(kAllFields); ++f) {
    DeviceCounters bumped = base;
    bumped.*kAllFields[f] += 1'000'000;
    EXPECT_GE(m.seconds(bumped), s0) << "field index " << f;
  }
  for (std::size_t f = 0; f < std::size(kCostFields); ++f) {
    DeviceCounters bumped = base;
    bumped.*kCostFields[f] += 1'000'000;
    EXPECT_GT(m.seconds(bumped), s0) << "cost field index " << f;
  }
}

TEST(PerfModel, CountersDeltaRoundTripsAllFields) {
  // begin + delta == end  must imply  counters_delta(begin, end) == delta,
  // field for field.
  DeviceCounters begin, delta;
  int i = 1;
  for (auto field : kAllFields) {
    begin.*field = static_cast<u64>(7919 * i);        // arbitrary distinct
    delta.*field = static_cast<u64>(104'729 * i + 1); // values per field
    i++;
  }
  DeviceCounters end = begin;
  end += delta;

  const DeviceCounters round = counters_delta(begin, end);
  for (std::size_t f = 0; f < std::size(kAllFields); ++f) {
    EXPECT_EQ(round.*kAllFields[f], delta.*kAllFields[f])
        << "field index " << f;
  }
}

}  // namespace
}  // namespace gsnp::device
