// gsnpd service tests: retry-backoff determinism, the line protocol, the
// daemon's admission control (typed load shedding), deadlines, cancellation,
// crash-safe recovery, sidecar namespacing for concurrent jobs sharing an
// output directory, and the AF_UNIX socket transport.
//
// The invariant under test throughout: a job run by the daemon — sharded,
// retried, degraded, interrupted, resumed — produces outputs byte-identical
// to a serial core::run_genome of the same spec (manifest digests equal).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "src/common/error.hpp"
#include "src/core/genome_pipeline.hpp"
#include "src/obs/eventlog.hpp"
#include "src/core/run_manifest.hpp"
#include "src/genome/dbsnp.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"
#include "src/service/daemon.hpp"
#include "src/service/dispatch.hpp"
#include "src/service/protocol.hpp"
#include "src/service/socket.hpp"

namespace gsnp::service {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::vector<u8> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  GSNP_CHECK_MSG(in.good(), "cannot open " << path);
  return std::vector<u8>(std::istreambuf_iterator<char>(in), {});
}

// ---- satellite: seeded jitter + cap in RetryPolicy -------------------------------

TEST(Backoff, PlainExponentialWhenJitterDisabled) {
  core::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_seconds = 0.5;
  policy.backoff_multiplier = 3.0;
  policy.jitter_fraction = 0.0;
  const auto sleeps = core::backoff_sequence(policy);
  ASSERT_EQ(sleeps.size(), 3u);  // one pause before each retry
  EXPECT_DOUBLE_EQ(sleeps[0], 0.5);
  EXPECT_DOUBLE_EQ(sleeps[1], 1.5);
  EXPECT_DOUBLE_EQ(sleeps[2], 4.5);
}

TEST(Backoff, CapBoundsEverySleep) {
  core::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.backoff_seconds = 1.0;
  policy.backoff_multiplier = 10.0;
  policy.backoff_cap_seconds = 5.0;
  const auto sleeps = core::backoff_sequence(policy);
  ASSERT_EQ(sleeps.size(), 7u);
  EXPECT_DOUBLE_EQ(sleeps[0], 1.0);
  for (const double s : sleeps) EXPECT_LE(s, 5.0);
  EXPECT_DOUBLE_EQ(sleeps.back(), 5.0);
}

TEST(Backoff, SizeFollowsMaxAttempts) {
  core::RetryPolicy policy;
  policy.backoff_seconds = 1.0;
  policy.max_attempts = 1;
  EXPECT_TRUE(core::backoff_sequence(policy).empty());
  policy.max_attempts = 0;  // degenerate: treated as one attempt
  EXPECT_TRUE(core::backoff_sequence(policy).empty());
  policy.max_attempts = 2;
  EXPECT_EQ(core::backoff_sequence(policy).size(), 1u);
}

TEST(Backoff, JitterIsDeterministicPerSaltAndBounded) {
  core::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.backoff_seconds = 0.25;
  policy.backoff_multiplier = 2.0;
  policy.backoff_cap_seconds = 1.5;
  policy.jitter_fraction = 0.4;
  policy.jitter_seed = 1234;

  const auto a = core::backoff_sequence(policy, 7);
  const auto b = core::backoff_sequence(policy, 7);
  EXPECT_EQ(a, b);  // same (policy, salt) -> identical sleeps, always

  // Different salts (distinct job/chromosome) desynchronize.
  const auto c = core::backoff_sequence(policy, 8);
  EXPECT_NE(a, c);
  // So does a different seed under the same salt.
  policy.jitter_seed = 4321;
  EXPECT_NE(a, core::backoff_sequence(policy, 7));

  // Every jittered sleep stays within [base * (1 - fraction), base].
  double base = policy.backoff_seconds;
  for (const double s : a) {
    const double capped = std::min(base, policy.backoff_cap_seconds);
    EXPECT_GE(s, capped * (1.0 - policy.jitter_fraction) - 1e-12);
    EXPECT_LE(s, capped + 1e-12);
    base *= policy.backoff_multiplier;
  }
}

// ---- line protocol ----------------------------------------------------------------

TEST(Protocol, ErrorCodeNamesRoundTrip) {
  for (const ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kInvalidArgument,
        ErrorCode::kQueueFull, ErrorCode::kPayloadTooLarge,
        ErrorCode::kQuotaExceeded, ErrorCode::kDeadlineExceeded,
        ErrorCode::kNotFound, ErrorCode::kShuttingDown, ErrorCode::kInternal,
        ErrorCode::kStorageFailure, ErrorCode::kFrameTooLarge}) {
    const auto back = error_code_from_name(error_code_name(code));
    ASSERT_TRUE(back.has_value()) << error_code_name(code);
    EXPECT_EQ(*back, code);
  }
  EXPECT_FALSE(error_code_from_name("no_such_code").has_value());
}

TEST(Protocol, RequestRoundTrip) {
  Request request;
  request.op = "submit";
  request.job.job_id = "job-9";
  request.job.tenant = "alice";
  request.job.engine = "gsnp_cpu";
  request.job.output_dir = "/tmp/out dir";
  request.job.window_size = 2048;
  request.job.deadline_seconds = 12.5;
  ChromosomeSpec chrom;
  chrom.name = "chr\"7\"";  // JSON escaping must survive
  chrom.alignment_file = "/data/chr7.soap";
  chrom.reference_file = "/data/chr7.fa";
  chrom.dbsnp_file = "/data/chr7.dbsnp";
  request.job.chromosomes.push_back(chrom);

  const Request back = parse_request(encode_request(request));
  EXPECT_EQ(back.op, "submit");
  EXPECT_EQ(back.job.job_id, "job-9");
  EXPECT_EQ(back.job.tenant, "alice");
  EXPECT_EQ(back.job.engine, "gsnp_cpu");
  EXPECT_EQ(back.job.output_dir, "/tmp/out dir");
  EXPECT_EQ(back.job.window_size, 2048u);
  EXPECT_DOUBLE_EQ(back.job.deadline_seconds, 12.5);
  ASSERT_EQ(back.job.chromosomes.size(), 1u);
  EXPECT_EQ(back.job.chromosomes[0].name, "chr\"7\"");
  EXPECT_EQ(back.job.chromosomes[0].alignment_file, "/data/chr7.soap");
  EXPECT_EQ(back.job.chromosomes[0].reference_file, "/data/chr7.fa");
  EXPECT_EQ(back.job.chromosomes[0].dbsnp_file, "/data/chr7.dbsnp");
}

TEST(Protocol, ResponseRoundTrip) {
  Response ok;
  ok.ok = true;
  ok.fields["job_id"] = "job-3";
  ok.fields["state"] = "done";
  const Response ok_back = parse_response(encode_response(ok));
  EXPECT_TRUE(ok_back.ok);
  EXPECT_EQ(ok_back.fields.at("job_id"), "job-3");
  EXPECT_EQ(ok_back.fields.at("state"), "done");

  Response err;
  err.ok = false;
  err.error = ErrorCode::kQuotaExceeded;
  err.message = "tenant alice at quota";
  const Response err_back = parse_response(encode_response(err));
  EXPECT_FALSE(err_back.ok);
  EXPECT_EQ(err_back.error, ErrorCode::kQuotaExceeded);
  EXPECT_EQ(err_back.message, "tenant alice at quota");
}

TEST(Protocol, MalformedRequestLinesRaiseTypedBadRequest) {
  for (const char* line :
       {"", "not json", "{", "[1,2,3]", "{\"job_id\":\"x\"}",
        "{\"op\":42}"}) {
    try {
      parse_request(line);
      FAIL() << "accepted malformed line: " << line;
    } catch (const ServiceError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kBadRequest) << line;
    } catch (const Error&) {
      // json-layer error is acceptable for non-JSON bytes
    }
  }
}

// ---- daemon fixture ---------------------------------------------------------------

/// Four small chromosomes on disk (FASTA + SOAP alignment, chr1 also with a
/// dbSNP prior file), a spool allocator, and a serial-run oracle.
class ServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_service_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    for (int c = 0; c < 4; ++c) {
      genome::GenomeSpec gspec;
      gspec.name = "chr" + std::to_string(c + 1);
      gspec.length = 3'000 - 400 * static_cast<u64>(c);
      gspec.seed = 40 + static_cast<u64>(c);
      const genome::Reference ref = genome::generate_reference(gspec);
      genome::write_fasta_file(fasta(gspec.name), {ref});
      const genome::Diploid individual(ref, {});
      reads::ReadSimSpec rspec;
      rspec.depth = 4.0;
      rspec.seed = 50 + static_cast<u64>(c);
      reads::write_alignment_file(soap(gspec.name),
                                  reads::simulate_reads(individual, rspec));
      if (c == 0) {
        const genome::DbSnpTable dbsnp = genome::make_dbsnp(ref, {}, 0.01, 3);
        genome::write_dbsnp_file(dir_ / "chr1.dbsnp", dbsnp);
      }
      names_.push_back(gspec.name);
    }
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path fasta(const std::string& name) { return dir_ / (name + ".fa"); }
  fs::path soap(const std::string& name) { return dir_ / (name + ".soap"); }

  DaemonConfig daemon_config(const std::string& spool) {
    DaemonConfig config;
    config.spool_dir = dir_ / spool;
    config.workers = 2;
    config.watchdog_interval_seconds = 0.002;
    return config;
  }

  JobSpec make_spec(std::initializer_list<int> chroms,
                    const std::string& id = "") {
    JobSpec spec;
    spec.job_id = id;
    spec.engine = "gsnp";
    spec.window_size = 1'024;
    for (const int c : chroms) {
      ChromosomeSpec cs;
      cs.name = names_[static_cast<std::size_t>(c)];
      cs.alignment_file = soap(cs.name).string();
      cs.reference_file = fasta(cs.name).string();
      if (c == 0) cs.dbsnp_file = (dir_ / "chr1.dbsnp").string();
      spec.chromosomes.push_back(cs);
    }
    return spec;
  }

  /// The serial oracle: core::run_genome on the same spec, in its own
  /// directory.  Returns the canonical manifest digest.
  std::string serial_digest(const JobSpec& spec, const fs::path& out,
                            core::GenomeReport* report_out = nullptr) {
    std::vector<genome::Reference> refs;
    std::vector<genome::DbSnpTable> tables;
    refs.reserve(spec.chromosomes.size());
    tables.reserve(spec.chromosomes.size());
    core::GenomeRunConfig cfg;
    cfg.output_dir = out;
    cfg.window_size = spec.window_size;
    for (const ChromosomeSpec& cs : spec.chromosomes) {
      auto loaded = genome::read_fasta_file(cs.reference_file);
      refs.push_back(std::move(loaded.at(0)));
      core::ChromosomeJob job;
      job.name = cs.name;
      job.alignment_file = cs.alignment_file;
      job.reference = &refs.back();
      if (!cs.dbsnp_file.empty()) {
        tables.push_back(genome::read_dbsnp_file(cs.dbsnp_file, {}, nullptr,
                                                 refs.back().size()));
        job.dbsnp = &tables.back();
      }
      cfg.chromosomes.push_back(job);
    }
    device::Device dev;
    const core::GenomeReport report =
        core::run_genome(cfg, core::EngineKind::kGsnp, &dev);
    if (report_out != nullptr) *report_out = report;
    return core::manifest_digest(core::read_run_manifest(report.manifest_file));
  }

  fs::path dir_;
  std::vector<std::string> names_;
};

ErrorCode submit_error(Daemon& daemon, JobSpec spec) {
  try {
    daemon.submit(std::move(spec));
  } catch (const ServiceError& e) {
    return e.code();
  }
  ADD_FAILURE() << "submission unexpectedly admitted";
  return ErrorCode::kInternal;
}

// ---- admission control ------------------------------------------------------------

TEST_F(ServiceFixture, MalformedSpecsRejectedTyped) {
  Daemon daemon(daemon_config("spool"));

  JobSpec empty = make_spec({});
  EXPECT_EQ(submit_error(daemon, empty), ErrorCode::kBadRequest);

  // Unknown backend names are their own typed code (invalid_argument, not
  // bad_request) and the message lists every registered backend so clients
  // can self-correct.
  JobSpec engine = make_spec({0});
  engine.engine = "warp-drive";
  EXPECT_EQ(submit_error(daemon, engine), ErrorCode::kInvalidArgument);
  try {
    daemon.submit(engine);
    FAIL() << "unknown backend must be rejected";
  } catch (const ServiceError& e) {
    EXPECT_NE(std::string(e.what()).find("warp-drive"), std::string::npos);
    for (const auto& info : gsnp::core::backend_registry())
      EXPECT_NE(std::string(e.what()).find(info.name), std::string::npos)
          << "rejection must list backend " << info.name;
  }

  JobSpec missing = make_spec({0});
  missing.chromosomes[0].alignment_file = (dir_ / "nope.soap").string();
  EXPECT_EQ(submit_error(daemon, missing), ErrorCode::kBadRequest);

  JobSpec dup_names = make_spec({1, 1});
  EXPECT_EQ(submit_error(daemon, dup_names), ErrorCode::kBadRequest);

  EXPECT_EQ(daemon.stats().rejected_bad_request, 3u);
  EXPECT_EQ(daemon.stats().rejected_invalid_argument, 2u);
  EXPECT_EQ(daemon.stats().admitted, 0u);

  // Rejections must not poison the daemon: a clean job still runs.
  const std::string id = daemon.submit(make_spec({1}));
  ASSERT_TRUE(daemon.wait_job(id, 60.0));
  EXPECT_EQ(daemon.status(id).state, JobState::kDone);

  // id already taken AND the spec differs — an identical spec would be the
  // idempotent-resubmit path (its own test below), not an error.
  JobSpec duplicate = make_spec({1, 2}, id);
  EXPECT_EQ(submit_error(daemon, duplicate), ErrorCode::kBadRequest);
}

TEST_F(ServiceFixture, OversizedPayloadShed) {
  DaemonConfig config = daemon_config("spool");
  config.max_payload_bytes = 16;  // no alignment file is this small
  Daemon daemon(config);
  EXPECT_EQ(submit_error(daemon, make_spec({0})),
            ErrorCode::kPayloadTooLarge);
  EXPECT_EQ(daemon.stats().shed_payload, 1u);
  EXPECT_EQ(daemon.stats().shed_total(), 1u);
}

TEST_F(ServiceFixture, DeviceBudgetGateRejectsAndAdmitsTyped) {
  // Arm the admission gate with a capacity that fits exactly a 1 MiB batch
  // budget at the fixture's 1,024-site windows.
  constexpr u64 kBudget = u64{1} << 20;
  DaemonConfig config = daemon_config("spool");
  config.max_device_bytes = core::worst_case_device_bytes(kBudget, 1'024);
  Daemon daemon(config);

  // Unbatched job while the gate is armed: its device footprint is whatever
  // the deepest window happens to need — not computable up front — so the
  // daemon refuses to guess.
  EXPECT_EQ(submit_error(daemon, make_spec({0})),
            ErrorCode::kDeviceBudgetExceeded);

  // A budget whose worst case exceeds the capacity is typed the same way.
  JobSpec big = make_spec({0});
  big.batch_bytes = u64{8} << 20;
  EXPECT_EQ(submit_error(daemon, big), ErrorCode::kDeviceBudgetExceeded);
  EXPECT_EQ(daemon.stats().rejected_device_budget, 2u);
  EXPECT_EQ(daemon.metrics().counter("jobs_rejected_device_budget"), 2u);

  // A fitting budget is admitted, runs batched, and still produces the
  // exact artifacts of the unbatched serial oracle (§IV-G under batching).
  JobSpec ok = make_spec({0});
  ok.batch_bytes = kBudget;
  const std::string id = daemon.submit(ok);
  ASSERT_TRUE(daemon.wait_job(id, 60.0));
  const JobStatus status = daemon.status(id);
  ASSERT_EQ(status.state, JobState::kDone) << status.error;
  EXPECT_EQ(status.manifest_digest,
            serial_digest(make_spec({0}), dir_ / "serial_unbatched"));
  EXPECT_EQ(daemon.stats().rejected_device_budget, 2u);
}

TEST_F(ServiceFixture, DeviceBudgetDaemonDefaultSatisfiesGate) {
  // A server-side default budget lets unbatched submissions through the
  // gate: the daemon applies its own batch_bytes before computing the worst
  // case, and forwards the same default into the run config.
  constexpr u64 kBudget = u64{1} << 20;
  DaemonConfig config = daemon_config("spool");
  config.batch_bytes = kBudget;
  config.max_device_bytes = core::worst_case_device_bytes(kBudget, 1'024);
  Daemon daemon(config);
  const std::string id = daemon.submit(make_spec({1}));
  ASSERT_TRUE(daemon.wait_job(id, 60.0));
  EXPECT_EQ(daemon.status(id).state, JobState::kDone);
  EXPECT_EQ(daemon.stats().rejected_device_budget, 0u);
}

TEST_F(ServiceFixture, QueueFullAndQuotaShedTyped) {
  DaemonConfig config = daemon_config("spool");
  config.workers = 1;
  config.queue_capacity = 2;
  config.tenant_quota = 1;
  // Hold every admitted chromosome at the attempt gate so admitted jobs stay
  // "unfinished" deterministically while we probe the admission limits.
  std::atomic<bool> release{false};
  config.fault_arm = [&release](device::Device&, const std::string&,
                                const std::string&) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  };
  Daemon daemon(config);

  const std::string a = daemon.submit(make_spec({1}));
  EXPECT_EQ(daemon.status(a).tenant, "default");

  // Same tenant again: quota (1) trips before capacity (2).
  EXPECT_EQ(submit_error(daemon, make_spec({2})), ErrorCode::kQuotaExceeded);

  // Another tenant fits the queue...
  JobSpec other = make_spec({2});
  other.tenant = "bob";
  const std::string b = daemon.submit(std::move(other));

  // ...but a third unfinished job exceeds queue_capacity for any tenant.
  JobSpec third = make_spec({3});
  third.tenant = "carol";
  EXPECT_EQ(submit_error(daemon, std::move(third)), ErrorCode::kQueueFull);

  const DaemonStats mid = daemon.stats();
  EXPECT_EQ(mid.shed_quota, 1u);
  EXPECT_EQ(mid.shed_queue_full, 1u);
  EXPECT_EQ(mid.shed_total(), 2u);
  EXPECT_EQ(mid.admitted, 2u);
  EXPECT_EQ(mid.active, 2u);

  release.store(true);
  daemon.wait_idle();
  EXPECT_EQ(daemon.status(a).state, JobState::kDone);
  EXPECT_EQ(daemon.status(b).state, JobState::kDone);
  EXPECT_EQ(daemon.stats().active, 0u);
  EXPECT_EQ(daemon.stats().completed, 2u);

  // With capacity freed, the once-shed tenant admits fine now.
  const std::string c = daemon.submit(make_spec({3}));
  ASSERT_TRUE(daemon.wait_job(c, 60.0));
  EXPECT_EQ(daemon.status(c).state, JobState::kDone);
}

TEST_F(ServiceFixture, CancelIsTypedAndIdempotent) {
  DaemonConfig config = daemon_config("spool");
  config.workers = 1;
  std::atomic<bool> release{false};
  config.fault_arm = [&release](device::Device&, const std::string&,
                                const std::string&) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  };
  Daemon daemon(config);

  EXPECT_THROW(daemon.status("job-404"), ServiceError);
  EXPECT_THROW(daemon.cancel("job-404"), ServiceError);

  const std::string id = daemon.submit(make_spec({1, 2}));
  daemon.cancel(id);
  release.store(true);
  ASSERT_TRUE(daemon.wait_job(id, 60.0));
  const JobStatus status = daemon.status(id);
  EXPECT_EQ(status.state, JobState::kCancelled);
  EXPECT_FALSE(status.error.empty());
  daemon.cancel(id);  // terminal: a no-op, not an error
  EXPECT_EQ(daemon.status(id).state, JobState::kCancelled);
  EXPECT_EQ(daemon.stats().cancelled, 1u);
}

TEST_F(ServiceFixture, ResubmitWithClientIdIsIdempotent) {
  // The resilient client's blind resend contract (socket.hpp): a retried
  // submit of the identical spec under a client-supplied id is answered from
  // existing state — never run twice — while a DIFFERENT spec under a taken
  // id stays a typed error.
  Daemon daemon(daemon_config("spool"));
  const JobSpec spec = make_spec({1}, "idem");
  ASSERT_EQ(daemon.submit(spec), "idem");
  ASSERT_TRUE(daemon.wait_job("idem", 60.0));

  EXPECT_EQ(daemon.submit(spec), "idem");  // lost-ack retry, job is done
  EXPECT_EQ(daemon.stats().deduplicated, 1u);
  EXPECT_EQ(daemon.stats().admitted, 1u);  // not admitted a second time
  EXPECT_EQ(daemon.stats().completed, 1u);

  EXPECT_EQ(submit_error(daemon, make_spec({1, 2}, "idem")),
            ErrorCode::kBadRequest);
}

// ---- completion & byte identity ---------------------------------------------------

TEST_F(ServiceFixture, CompletedJobMatchesSerialRunByteForByte) {
  DaemonConfig config = daemon_config("spool");
  config.workers = 3;  // chromosomes genuinely run concurrently
  Daemon daemon(config);

  const JobSpec spec = make_spec({0, 1, 2});
  const std::string id = daemon.submit(spec);
  ASSERT_TRUE(daemon.wait_job(id, 120.0));

  const JobStatus status = daemon.status(id);
  ASSERT_EQ(status.state, JobState::kDone) << status.error;
  EXPECT_EQ(status.chromosomes_total, 3u);
  EXPECT_EQ(status.chromosomes_done, 3u);
  EXPECT_FALSE(status.degraded);
  ASSERT_FALSE(status.manifest_digest.empty());

  core::GenomeReport serial;
  EXPECT_EQ(status.manifest_digest,
            serial_digest(spec, dir_ / "serial", &serial));
  for (const fs::path& out : serial.output_files)
    EXPECT_EQ(read_bytes(status.output_dir / out.filename()), read_bytes(out))
        << out;

  // The manifest on disk is the daemon's journal of record: re-read it and
  // re-derive the digest independently.
  const core::RunManifest manifest =
      core::read_run_manifest(status.manifest_file);
  ASSERT_EQ(manifest.chromosomes.size(), 3u);
  EXPECT_EQ(manifest.chromosomes[0].name, "chr1");  // submission order
  EXPECT_EQ(core::manifest_digest(manifest), status.manifest_digest);

  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.chromosomes_done, 3u);
  EXPECT_EQ(daemon.metrics().counter("jobs_completed"), 1u);
}

TEST_F(ServiceFixture, InjectedDeviceFaultDegradesNotFails) {
  DaemonConfig config = daemon_config("spool");
  config.workers = 1;
  config.retry.max_attempts = 2;
  config.retry.backoff_seconds = 0.0;
  // Wedge the device for chr2 only: every alloc fails while it runs, so both
  // attempts die and the chromosome falls back to the CPU engine.
  config.fault_arm = [](device::Device& dev, const std::string&,
                        const std::string& chromosome) {
    device::FaultPlan plan;
    if (chromosome == "chr2") {
      plan.fail_alloc_at = static_cast<i64>(dev.alloc_count());
      plan.fault_count = -1;
    }
    dev.set_fault_plan(plan);
  };
  Daemon daemon(config);

  const JobSpec spec = make_spec({0, 1, 2});
  const std::string id = daemon.submit(spec);
  ASSERT_TRUE(daemon.wait_job(id, 120.0));

  const JobStatus status = daemon.status(id);
  ASSERT_EQ(status.state, JobState::kDone) << status.error;
  EXPECT_TRUE(status.degraded);

  // Degradation costs speed, never correctness (§IV-G): the digest still
  // matches the serial GPU run because degraded entries record identical
  // output bytes (the digest folds in engine names per chromosome — compare
  // the file bytes, which are the actual §IV-G guarantee).
  core::GenomeReport serial;
  serial_digest(spec, dir_ / "serial", &serial);
  for (const fs::path& out : serial.output_files)
    EXPECT_EQ(read_bytes(status.output_dir / out.filename()), read_bytes(out))
        << out;
  const core::RunManifest manifest =
      core::read_run_manifest(status.manifest_file);
  const core::ManifestEntry* entry = manifest.find("chr2");
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->degraded);
  EXPECT_EQ(entry->engine, "gsnp_cpu");
  EXPECT_EQ(daemon.stats().chromosomes_degraded, 1u);
}

// ---- deadlines --------------------------------------------------------------------

TEST_F(ServiceFixture, DeadlineOverrunFailsTypedDeadlineExceeded) {
  DaemonConfig config = daemon_config("spool");
  config.workers = 1;
  // Hold the first attempt until the watchdog has certainly fired; the
  // worker then observes the kDeadline cancellation at its next gate.
  config.fault_arm = [](device::Device&, const std::string&,
                        const std::string&) {
    std::this_thread::sleep_for(50ms);
  };
  Daemon daemon(config);

  JobSpec spec = make_spec({1});
  spec.deadline_seconds = 0.005;
  const std::string id = daemon.submit(std::move(spec));
  ASSERT_TRUE(daemon.wait_job(id, 60.0));
  const JobStatus status = daemon.status(id);
  EXPECT_EQ(status.state, JobState::kFailed);
  EXPECT_EQ(status.error, "deadline_exceeded");
  EXPECT_EQ(daemon.stats().failed, 1u);

  // No torn partial output was published for the cancelled chromosome.
  EXPECT_FALSE(fs::exists(status.output_dir / "chr2.gsnp.snp"));
}

// ---- crash-safe recovery ----------------------------------------------------------

TEST_F(ServiceFixture, CrashBetweenPublishAndJournalRecoversExactlyOnce) {
  const JobSpec spec = make_spec({0, 1, 2}, "jobX");
  const fs::path spool = dir_ / "spool";

  // Daemon A dies at chr2's post_publish point: chr2's output file is
  // renamed into place but its manifest entry was never written — the
  // classic torn durability window.
  {
    DaemonConfig config = daemon_config("spool");
    config.workers = 1;  // chromosomes complete in submission order
    std::atomic<Daemon*> self{nullptr};
    config.checkpoint_hook = [&self](std::string_view point,
                                     const std::string&,
                                     const std::string& chromosome) {
      if (point == "post_publish" && chromosome == "chr2") {
        self.load()->simulate_crash();
        throw Error("injected crash at post_publish");
      }
    };
    Daemon daemon(config);
    self.store(&daemon);
    ASSERT_EQ(daemon.submit(spec), "jobX");
    daemon.wait_idle();  // returns once the crash flag is up
  }

  const fs::path job_dir = spool / "jobs" / "jobX";
  const core::RunManifest torn =
      core::read_run_manifest(job_dir / "manifest.json");
  ASSERT_EQ(torn.chromosomes.size(), 1u);  // chr1 journaled, chr2 was not
  EXPECT_EQ(torn.chromosomes[0].name, "chr1");
  EXPECT_TRUE(fs::exists(job_dir / "out" / "chr1.gsnp.snp"));
  EXPECT_TRUE(fs::exists(job_dir / "out" / "chr2.gsnp.snp"));  // published!
  const auto chr1_mtime = fs::last_write_time(job_dir / "out" / "chr1.gsnp.snp");

  // Daemon B scans the spool: jobX is incomplete, so it resumes — chr1
  // verifies by CRC and is skipped, chr2 re-runs to identical bytes and
  // renames over itself, chr3 runs fresh.  Exactly once, end to end.
  {
    Daemon daemon(daemon_config("spool"));
    EXPECT_EQ(daemon.recover(), 1u);
    ASSERT_TRUE(daemon.wait_job("jobX", 120.0));
    const JobStatus status = daemon.status("jobX");
    ASSERT_EQ(status.state, JobState::kDone) << status.error;
    EXPECT_TRUE(status.resumed);
    EXPECT_EQ(status.chromosomes_done, 3u);

    core::GenomeReport serial;
    EXPECT_EQ(status.manifest_digest,
              serial_digest(spec, dir_ / "serial", &serial));
    for (const fs::path& out : serial.output_files)
      EXPECT_EQ(read_bytes(status.output_dir / out.filename()),
                read_bytes(out))
          << out;
    // chr1 was not rewritten — its checkpoint verified.
    EXPECT_EQ(fs::last_write_time(job_dir / "out" / "chr1.gsnp.snp"),
              chr1_mtime);
    EXPECT_EQ(daemon.metrics().counter("jobs_resumed"), 1u);

    // A third daemon would have nothing to do: jobX is terminal history.
    EXPECT_EQ(daemon.stats().active, 0u);
  }
  {
    Daemon daemon(daemon_config("spool"));
    EXPECT_EQ(daemon.recover(), 0u);
    EXPECT_EQ(daemon.status("jobX").state, JobState::kDone);
  }

  // The event log spans all three daemon incarnations and replays the
  // transition history: one submitted, one recovered, and — the durability
  // contract — exactly one published, even though chr2's output crossed the
  // crash window twice.  The third daemon (pure history) adds nothing.
  const std::vector<obs::JobEvent> events =
      obs::read_event_log(spool / "events.jsonl");
  ASSERT_FALSE(events.empty());
  std::size_t submitted = 0, recovered = 0, published = 0, chrom_done = 0;
  for (const obs::JobEvent& ev : events) {
    EXPECT_EQ(ev.job_id, "jobX");
    if (ev.event == "submitted") ++submitted;
    if (ev.event == "recovered") ++recovered;
    if (ev.event == "published") ++published;
    if (ev.event == "chromosome_done") ++chrom_done;
  }
  EXPECT_EQ(submitted, 1u);
  EXPECT_EQ(recovered, 1u);
  EXPECT_EQ(published, 1u);
  EXPECT_GE(chrom_done, 3u);  // chr1 before the crash, chr1..chr3 after
  EXPECT_EQ(events.front().event, "submitted");
  EXPECT_EQ(events.back().event, "published");
}

TEST_F(ServiceFixture, ShedAndRejectedJobsLogTypedReasonEvents) {
  DaemonConfig config = daemon_config("spool");
  config.workers = 1;
  config.queue_capacity = 2;
  config.tenant_quota = 1;
  std::atomic<bool> release{false};
  config.fault_arm = [&release](device::Device&, const std::string&,
                                const std::string&) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  };
  {
    Daemon daemon(config);
    const std::string held = daemon.submit(make_spec({1}));
    EXPECT_EQ(submit_error(daemon, make_spec({2})),
              ErrorCode::kQuotaExceeded);
    JobSpec other = make_spec({2});
    other.tenant = "bob";
    daemon.submit(std::move(other));
    JobSpec third = make_spec({3});
    third.tenant = "carol";
    EXPECT_EQ(submit_error(daemon, std::move(third)), ErrorCode::kQueueFull);
    EXPECT_EQ(submit_error(daemon, make_spec({})), ErrorCode::kBadRequest);
    release.store(true);
    daemon.wait_idle();
    (void)held;
  }

  std::size_t shed_quota = 0, shed_full = 0, rejected_bad = 0;
  for (const obs::JobEvent& ev :
       obs::read_event_log(dir_ / "spool" / "events.jsonl")) {
    if (ev.event == "shed" && ev.reason == "quota_exceeded") ++shed_quota;
    if (ev.event == "shed" && ev.reason == "queue_full") ++shed_full;
    if (ev.event == "rejected" && ev.reason == "bad_request") ++rejected_bad;
  }
  EXPECT_EQ(shed_quota, 1u);
  EXPECT_EQ(shed_full, 1u);
  EXPECT_EQ(rejected_bad, 1u);
}

// ---- telemetry ops ----------------------------------------------------------------

TEST_F(ServiceFixture, StatsSurfaceQueueAndSpoolGauges) {
  Daemon daemon(daemon_config("spool"));
  const std::string id = daemon.submit(make_spec({1}));
  ASSERT_TRUE(daemon.wait_job(id, 60.0));
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.workers_busy, 0u);
  EXPECT_GT(stats.spool_bytes, 0u);  // journal + manifest + outputs + events
  EXPECT_EQ(stats.eventlog_write_failures, 0u);

  Request request;
  request.op = "stats";
  const Response response = handle_request(daemon, request);
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.fields.at("queue_depth"), "0");
  EXPECT_EQ(response.fields.at("workers_busy"), "0");
  EXPECT_EQ(response.fields.at("spool_bytes"),
            std::to_string(stats.spool_bytes));
}

TEST_F(ServiceFixture, MetricsOpServesPrometheusText) {
  Daemon daemon(daemon_config("spool"));
  const std::string id = daemon.submit(make_spec({1}));
  ASSERT_TRUE(daemon.wait_job(id, 60.0));

  Request request;
  request.op = "metrics";
  const Response response = handle_request(daemon, request);
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.fields.at("format"), "prometheus-text-0.0.4");
  const std::string& text = response.fields.at("text");
  EXPECT_NE(text.find("# TYPE gsnpd_jobs_completed_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsnpd_jobs_completed_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gsnpd_job_completion_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsnpd_job_completion_seconds_count 1\n"),
            std::string::npos);
  // Pre-registered families render even at zero, so dashboards see every
  // series from the first scrape.
  EXPECT_NE(text.find("gsnpd_jobs_failed_total 0\n"), std::string::npos);

  // The wire trip preserves the multi-line exposition byte-for-byte.
  const Response decoded =
      parse_response(encode_response(response));
  EXPECT_EQ(decoded.fields.at("text"), text);
}

TEST_F(ServiceFixture, HealthOpReportsReadiness) {
  Daemon daemon(daemon_config("spool"));
  Request request;
  request.op = "health";
  const Response response = handle_request(daemon, request);
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.fields.at("ready"), "true");
  EXPECT_EQ(response.fields.at("spool_writable"), "true");
  EXPECT_EQ(response.fields.at("workers_alive"), "true");
  EXPECT_EQ(response.fields.at("shutting_down"), "false");

  const DaemonHealth health = daemon.health();
  EXPECT_TRUE(health.ready);
  EXPECT_EQ(health.queue_depth, 0u);
  EXPECT_GT(health.queue_capacity, 0u);
}

TEST_F(ServiceFixture, GracefulShutdownParksJobsForResume) {
  const JobSpec spec = make_spec({1, 2}, "parked");
  {
    DaemonConfig config = daemon_config("spool");
    config.workers = 1;
    std::atomic<bool> release{false};
    config.fault_arm = [&release](device::Device&, const std::string&,
                                  const std::string&) {
      while (!release.load()) std::this_thread::sleep_for(1ms);
    };
    Daemon daemon(config);
    daemon.submit(spec);
    release.store(true);
    // Destructor: graceful shutdown cancels the unfinished job with reason
    // kShutdown and journals it as interrupted.
  }
  {
    Daemon daemon(daemon_config("spool"));
    EXPECT_EQ(daemon.recover(), 1u);
    ASSERT_TRUE(daemon.wait_job("parked", 120.0));
    const JobStatus status = daemon.status("parked");
    EXPECT_EQ(status.state, JobState::kDone) << status.error;
    EXPECT_TRUE(status.resumed);
    EXPECT_EQ(status.manifest_digest, serial_digest(spec, dir_ / "serial"));
  }
}

// ---- sidecar namespacing for shared output dirs -----------------------------------

TEST_F(ServiceFixture, ConcurrentJobsSharingOutputDirGetNamespacedSidecars) {
  // Two jobs call the SAME chromosome from the same (malformed) alignment
  // into the same output_dir.  Published outputs share a name by design
  // (identical bytes rename onto identical paths); scratch artifacts — the
  // lenient-ingest quarantine sidecar above all — must NOT collide.
  const fs::path bad = dir_ / "chr2.bad.soap";
  fs::copy_file(soap("chr2"), bad);
  {
    std::ofstream append(bad, std::ios::app);
    append << "this line is not a soap record\n";
  }

  DaemonConfig config = daemon_config("spool");
  config.workers = 2;
  config.ingest = IngestPolicy::make_lenient();
  Daemon daemon(config);

  const fs::path shared = dir_ / "shared_out";
  auto job_for = [&](const std::string& id) {
    JobSpec spec;
    spec.job_id = id;
    spec.engine = "gsnp";
    spec.window_size = 1'024;
    spec.output_dir = shared.string();
    ChromosomeSpec cs;
    cs.name = "chr2";
    cs.alignment_file = bad.string();
    cs.reference_file = fasta("chr2").string();
    spec.chromosomes.push_back(cs);
    return spec;
  };
  daemon.submit(job_for("left"));
  daemon.submit(job_for("right"));
  daemon.wait_idle();
  ASSERT_EQ(daemon.status("left").state, JobState::kDone);
  ASSERT_EQ(daemon.status("right").state, JobState::kDone);

  // One namespaced sidecar per job; never a shared un-prefixed one.
  EXPECT_TRUE(fs::exists(shared / "left.chr2.quarantine.txt"));
  EXPECT_TRUE(fs::exists(shared / "right.chr2.quarantine.txt"));
  EXPECT_FALSE(fs::exists(shared / "chr2.quarantine.txt"));
  EXPECT_TRUE(fs::exists(shared / "chr2.gsnp.snp"));

  // Both jobs quarantined exactly the one malformed record.
  for (const char* id : {"left", "right"}) {
    const core::RunManifest manifest =
        core::read_run_manifest(daemon.status(id).manifest_file);
    ASSERT_EQ(manifest.chromosomes.size(), 1u);
    EXPECT_EQ(manifest.chromosomes[0].ingest.records_quarantined, 1u) << id;
  }
}

// ---- socket transport -------------------------------------------------------------

TEST_F(ServiceFixture, SocketRoundTripServesSubmitStatusStats) {
  Daemon daemon(daemon_config("spool"));
  const fs::path socket_path = dir_ / "gsnpd.sock";
  std::unique_ptr<LineServer> server;
  try {
    server = std::make_unique<LineServer>(
        socket_path,
        [&daemon](const std::string& line) {
          return handle_line(daemon, line);
        });
  } catch (const Error& e) {
    GTEST_SKIP() << "SKIPPED — cannot bind AF_UNIX socket at " << socket_path
                 << ": " << e.what();
  }

  LineClient client(socket_path);

  Request ping;
  ping.op = "ping";
  Response pong = parse_response(client.request(encode_request(ping)));
  ASSERT_TRUE(pong.ok);
  EXPECT_EQ(pong.fields.at("pong"), "gsnpd");

  Request submit;
  submit.op = "submit";
  submit.job = make_spec({1});
  const Response admitted =
      parse_response(client.request(encode_request(submit)));
  ASSERT_TRUE(admitted.ok) << admitted.message;
  const std::string id = admitted.fields.at("job_id");
  daemon.wait_job(id, 120.0);

  Request status;
  status.op = "status";
  status.job_id = id;
  const Response done = parse_response(client.request(encode_request(status)));
  ASSERT_TRUE(done.ok) << done.message;
  EXPECT_EQ(done.fields.at("state"), "done");
  EXPECT_EQ(done.fields.at("chromosomes_done"), "1");
  EXPECT_FALSE(done.fields.at("manifest_digest").empty());

  // Typed errors survive the wire.
  Request missing;
  missing.op = "status";
  missing.job_id = "job-404";
  const Response not_found =
      parse_response(client.request(encode_request(missing)));
  EXPECT_FALSE(not_found.ok);
  EXPECT_EQ(not_found.error, ErrorCode::kNotFound);

  const Response bad = parse_response(client.request("this is not json"));
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, ErrorCode::kBadRequest);

  Request stats;
  stats.op = "stats";
  const Response counters =
      parse_response(client.request(encode_request(stats)));
  ASSERT_TRUE(counters.ok);
  EXPECT_EQ(counters.fields.at("admitted"), "1");
  EXPECT_EQ(counters.fields.at("completed"), "1");

  server->stop();
}

}  // namespace
}  // namespace gsnp::service
