// Tests for window loading (read_site) and the counting component.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/window.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"

namespace gsnp::core {
namespace {

reads::AlignmentRecord make_record(u64 pos, u16 length, const char* id = "r",
                                   u32 hits = 1,
                                   Strand strand = Strand::kForward) {
  reads::AlignmentRecord rec;
  rec.read_id = id;
  rec.pos = pos;
  rec.length = length;
  rec.hit_count = hits;
  rec.strand = strand;
  rec.chr_name = "c";
  rec.seq.assign(length, 'A');
  rec.qual.assign(length, 'I');  // q40
  return rec;
}

WindowLoader::RecordSource vector_source(
    std::vector<reads::AlignmentRecord> recs) {
  auto state = std::make_shared<std::pair<std::vector<reads::AlignmentRecord>,
                                          std::size_t>>(std::move(recs), 0);
  return [state]() -> std::optional<reads::AlignmentRecord> {
    if (state->second >= state->first.size()) return std::nullopt;
    return state->first[state->second++];
  };
}

// ---- WindowLoader -------------------------------------------------------------

TEST(WindowLoaderTest, SplitsSitesIntoWindows) {
  WindowLoader loader(vector_source({}), 25, 10);
  WindowRecords win;
  ASSERT_TRUE(loader.next(win));
  EXPECT_EQ(win.start, 0u);
  EXPECT_EQ(win.size, 10u);
  ASSERT_TRUE(loader.next(win));
  EXPECT_EQ(win.start, 10u);
  ASSERT_TRUE(loader.next(win));
  EXPECT_EQ(win.start, 20u);
  EXPECT_EQ(win.size, 5u);  // final partial window
  EXPECT_FALSE(loader.next(win));
}

TEST(WindowLoaderTest, BoundaryRecordAppearsInBothWindows) {
  // A record covering [8, 12) overlaps windows [0,10) and [10,20).
  WindowLoader loader(vector_source({make_record(8, 4)}), 20, 10);
  WindowRecords win;
  ASSERT_TRUE(loader.next(win));
  EXPECT_EQ(win.records.size(), 1u);
  ASSERT_TRUE(loader.next(win));
  EXPECT_EQ(win.records.size(), 1u);
  EXPECT_EQ(win.records[0].pos, 8u);
}

TEST(WindowLoaderTest, RecordSpanningManyWindows) {
  WindowLoader loader(vector_source({make_record(0, 35)}), 40, 10);
  WindowRecords win;
  for (int w = 0; w < 4; ++w) {
    ASSERT_TRUE(loader.next(win));
    EXPECT_EQ(win.records.size(), w < 4 ? 1u : 0u) << "window " << w;
  }
}

TEST(WindowLoaderTest, LookaheadRecordNotLost) {
  // Reading window [0,10) encounters a record at pos 25; it must surface in
  // window [20,30), not be dropped, and windows in between must be empty.
  WindowLoader loader(vector_source({make_record(2, 3), make_record(25, 3)}),
                      30, 10);
  WindowRecords win;
  ASSERT_TRUE(loader.next(win));
  EXPECT_EQ(win.records.size(), 1u);
  ASSERT_TRUE(loader.next(win));
  EXPECT_TRUE(win.records.empty());
  ASSERT_TRUE(loader.next(win));
  ASSERT_EQ(win.records.size(), 1u);
  EXPECT_EQ(win.records[0].pos, 25u);
}

TEST(WindowLoaderTest, AgreesWithBruteForceOnSimulatedData) {
  genome::GenomeSpec gspec;
  gspec.length = 5000;
  const genome::Reference ref = genome::generate_reference(gspec);
  const genome::Diploid ind(ref, {});
  reads::ReadSimSpec rspec;
  rspec.depth = 6.0;
  rspec.read_len = 50;
  const auto records = reads::simulate_reads(ind, rspec);

  WindowLoader loader(vector_source(records), ref.size(), 777);
  WindowRecords win;
  while (loader.next(win)) {
    // Brute force: which records overlap this window?
    std::vector<const reads::AlignmentRecord*> expected;
    for (const auto& rec : records)
      if (rec.pos < win.start + win.size && rec.pos + rec.length > win.start)
        expected.push_back(&rec);
    ASSERT_EQ(win.records.size(), expected.size()) << "window " << win.start;
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(win.records[i].read_id, expected[i]->read_id);
  }
}

// ---- count_window -----------------------------------------------------------------

TEST(CountWindow, StatsExactOnConstructedCase) {
  WindowRecords win;
  win.start = 0;
  win.size = 10;
  auto r1 = make_record(0, 5, "r1", 1);   // A x5, unique
  auto r2 = make_record(2, 5, "r2", 3);   // A x5, multi-hit
  r2.seq = "CCCCC";
  win.records = {r1, r2};

  WindowObs obs;
  std::vector<SiteStats> stats;
  BaseWordWindow sparse(win.size);
  BaseOccWindow dense(win.size);
  count_window(win, obs, stats, &dense, &sparse);

  // Site 3: covered by both reads.
  EXPECT_EQ(stats[3].depth, 2u);
  EXPECT_EQ(stats[3].count_uniq[0], 1u);   // A from r1 only (unique)
  EXPECT_EQ(stats[3].count_all[0], 1u);
  EXPECT_EQ(stats[3].count_all[1], 1u);    // C from r2
  EXPECT_EQ(stats[3].count_uniq[1], 0u);   // r2 is multi-hit
  EXPECT_EQ(stats[3].hit_sum, 4u);         // 1 + 3

  // Sparse/dense likelihood structures hold unique hits only.
  EXPECT_EQ(sparse.size_of(3), 1u);
  EXPECT_EQ(sparse.size_of(0), 1u);
  EXPECT_EQ(sparse.size_of(8), 0u);
  const AlignedBase ab = base_word_unpack(sparse.site(3)[0]);
  EXPECT_EQ(ab.base, 0);
  EXPECT_EQ(ab.coord, 3);

  u64 dense_total = 0;
  for (const u8 v : dense.site(3)) dense_total += v;
  EXPECT_EQ(dense_total, 1u);
}

TEST(CountWindow, ArrivalOrderPreservedPerSite) {
  WindowRecords win;
  win.start = 0;
  win.size = 5;
  auto r1 = make_record(0, 3, "r1");
  r1.seq = "GGG";
  auto r2 = make_record(0, 3, "r2");
  r2.seq = "TTT";
  win.records = {r1, r2};

  WindowObs obs;
  std::vector<SiteStats> stats;
  count_window(win, obs, stats, nullptr, nullptr);
  const auto site0 = obs.site(0);
  ASSERT_EQ(site0.size(), 2u);
  EXPECT_EQ(site0[0].base, base_from_char('G'));  // r1 arrived first
  EXPECT_EQ(site0[1].base, base_from_char('T'));
}

TEST(CountWindow, ClampsRecordsToWindowBounds) {
  WindowRecords win;
  win.start = 10;
  win.size = 5;
  win.records = {make_record(8, 10)};  // covers [8,18), window is [10,15)

  WindowObs obs;
  std::vector<SiteStats> stats;
  count_window(win, obs, stats, nullptr, nullptr);
  for (u32 s = 0; s < 5; ++s) EXPECT_EQ(stats[s].depth, 1u);
  EXPECT_EQ(obs.obs.size(), 5u);
  // Coordinate at window start is offset 2 of the read.
  EXPECT_EQ(obs.site(0)[0].coord, 2);
}

TEST(CountWindow, EmptyWindow) {
  WindowRecords win;
  win.start = 0;
  win.size = 8;
  WindowObs obs;
  std::vector<SiteStats> stats;
  BaseWordWindow sparse(8);
  count_window(win, obs, stats, nullptr, &sparse);
  EXPECT_EQ(obs.obs.size(), 0u);
  for (const auto& st : stats) EXPECT_EQ(st.depth, 0u);
  EXPECT_TRUE(sparse.words.empty());
}

TEST(CountWindow, QualitySumsAccumulate) {
  WindowRecords win;
  win.start = 0;
  win.size = 2;
  auto r1 = make_record(0, 2, "r1");
  r1.qual = "+5";  // q10, q20
  win.records = {r1};
  WindowObs obs;
  std::vector<SiteStats> stats;
  count_window(win, obs, stats, nullptr, nullptr);
  EXPECT_EQ(stats[0].qual_sum_all[0], 10u);
  EXPECT_EQ(stats[1].qual_sum_all[0], 20u);
}

}  // namespace
}  // namespace gsnp::core
