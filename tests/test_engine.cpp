// Integration tests: the three engines over a synthetic dataset.  The
// centerpiece is the paper's §IV-G guarantee — SOAPsnp, GSNP_CPU and GSNP
// produce exactly the same result rows.

#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/consistency.hpp"
#include "src/core/engine.hpp"
#include "src/genome/dbsnp.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"
#include "src/reads/stats.hpp"

namespace gsnp::core {
namespace {

namespace fs = std::filesystem;

/// One shared dataset + three engine runs (expensive; computed once).
class Engines : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = fs::temp_directory_path() / "gsnp_engine_test";
    fs::create_directories(dir_);

    genome::GenomeSpec gspec;
    gspec.name = "chrE";
    gspec.length = 30'000;
    gspec.n_gap_rate = 0.001;  // exercise 'N' reference sites end to end
    ref_ = new genome::Reference(genome::generate_reference(gspec));

    genome::SnpPlantSpec pspec;
    pspec.snp_rate = 0.002;
    snps_ = new std::vector<genome::PlantedSnp>(plant_snps(*ref_, pspec));
    const genome::Diploid individual(*ref_, *snps_);
    dbsnp_ = new genome::DbSnpTable(
        genome::make_dbsnp(*ref_, *snps_, 0.002, 11));

    reads::ReadSimSpec rspec;
    rspec.depth = 9.0;
    records_ = new std::vector<reads::AlignmentRecord>(
        reads::simulate_reads(individual, rspec));
    reads::write_alignment_file(dir_ / "a.soap", *records_);

    EngineConfig config;
    config.alignment_file = dir_ / "a.soap";
    config.reference = ref_;
    config.dbsnp = dbsnp_;
    config.temp_file = dir_ / "a.tmp";

    config.output_file = dir_ / "soapsnp.txt";
    config.window_size = 1'000;
    soapsnp_ = new RunReport(run_soapsnp(config));

    config.output_file = dir_ / "gsnpcpu.bin";
    config.window_size = 8'192;
    gsnp_cpu_ = new RunReport(run_gsnp_cpu(config));

    device_ = new device::Device();
    config.output_file = dir_ / "gsnp.bin";
    gsnp_ = new RunReport(run_gsnp(config, *device_));
  }

  static void TearDownTestSuite() {
    delete soapsnp_;
    delete gsnp_cpu_;
    delete gsnp_;
    delete device_;
    delete records_;
    delete dbsnp_;
    delete snps_;
    delete ref_;
    fs::remove_all(dir_);
  }

  static fs::path dir_;
  static genome::Reference* ref_;
  static std::vector<genome::PlantedSnp>* snps_;
  static genome::DbSnpTable* dbsnp_;
  static std::vector<reads::AlignmentRecord>* records_;
  static RunReport* soapsnp_;
  static RunReport* gsnp_cpu_;
  static RunReport* gsnp_;
  static device::Device* device_;
};

fs::path Engines::dir_;
genome::Reference* Engines::ref_ = nullptr;
std::vector<genome::PlantedSnp>* Engines::snps_ = nullptr;
genome::DbSnpTable* Engines::dbsnp_ = nullptr;
std::vector<reads::AlignmentRecord>* Engines::records_ = nullptr;
RunReport* Engines::soapsnp_ = nullptr;
RunReport* Engines::gsnp_cpu_ = nullptr;
RunReport* Engines::gsnp_ = nullptr;
device::Device* Engines::device_ = nullptr;

TEST_F(Engines, AllEnginesEmitOneRowPerSite) {
  EXPECT_EQ(soapsnp_->sites, ref_->size());
  std::string name;
  EXPECT_EQ(read_snp_output(dir_ / "soapsnp.txt", name).size(), ref_->size());
  EXPECT_EQ(read_snp_output(dir_ / "gsnp.bin", name).size(), ref_->size());
}

TEST_F(Engines, GsnpMatchesSoapsnpExactly) {
  // Paper §IV-G: "GSNP produces exactly the same result as that of SOAPsnp".
  const auto report =
      compare_output_files(dir_ / "soapsnp.txt", dir_ / "gsnp.bin");
  EXPECT_TRUE(report.identical) << report.detail;
}

TEST_F(Engines, GsnpCpuMatchesSoapsnpExactly) {
  const auto report =
      compare_output_files(dir_ / "soapsnp.txt", dir_ / "gsnpcpu.bin");
  EXPECT_TRUE(report.identical) << report.detail;
}

TEST_F(Engines, CompressedOutputMuchSmallerThanText) {
  const u64 text = soapsnp_->output_bytes;
  const u64 compressed = gsnp_->output_bytes;
  EXPECT_LT(compressed * 5, text);  // paper reports 14-16x
}

TEST_F(Engines, TempInputSmallerThanTextInput) {
  const u64 text_input = fs::file_size(dir_ / "a.soap");
  EXPECT_LT(gsnp_->temp_bytes * 2, text_input);  // paper reports ~3x
}

TEST_F(Engines, SoapsnpDominatedByLikelihoodThenRecycle) {
  // The Table I shape.
  const double likeli = soapsnp_->component("likeli");
  const double recycle = soapsnp_->component("recycle");
  for (const char* other : {"cal_p", "read", "count", "post", "output"})
    EXPECT_GT(likeli, soapsnp_->component(other));
  EXPECT_GT(likeli, 0.3 * soapsnp_->total());
  EXPECT_GT(recycle, 0.0);
}

TEST_F(Engines, GsnpEliminatesRecycleCost) {
  // Table IV: recycle drops by three orders of magnitude.
  EXPECT_LT(gsnp_->component("recycle"),
            0.05 * soapsnp_->component("recycle") + 1e-3);
}

TEST_F(Engines, GsnpFasterOverall) {
  EXPECT_LT(gsnp_->total(), soapsnp_->total());
  EXPECT_LT(gsnp_cpu_->total(), soapsnp_->total());
}

TEST_F(Engines, DeviceWorkWasModeled) {
  EXPECT_GT(gsnp_->device_modeled.get("likeli_sort"), 0.0);
  EXPECT_GT(gsnp_->device_modeled.get("likeli_comp"), 0.0);
  EXPECT_GT(gsnp_->device_counters.kernel_launches, 0u);
  EXPECT_GT(gsnp_->peak_device_bytes, 0u);
  EXPECT_LE(gsnp_->peak_device_bytes, device_->spec().global_bytes);
}

TEST_F(Engines, ReportsCountRecordsAndWindows) {
  EXPECT_EQ(soapsnp_->records, records_->size());
  EXPECT_EQ(gsnp_->records, records_->size());
  EXPECT_EQ(soapsnp_->windows, (ref_->size() + 999) / 1000);
  EXPECT_EQ(gsnp_->windows, (ref_->size() + 8191) / 8192);
}

TEST_F(Engines, WindowSizeDoesNotChangeResults) {
  // Re-run GSNP with a very different window size; rows must be identical.
  EngineConfig config;
  config.alignment_file = dir_ / "a.soap";
  config.reference = ref_;
  config.dbsnp = dbsnp_;
  config.temp_file = dir_ / "b.tmp";
  config.output_file = dir_ / "gsnp_smallwin.bin";
  config.window_size = 777;
  device::Device dev;
  run_gsnp(config, dev);
  const auto report =
      compare_output_files(dir_ / "gsnp.bin", dir_ / "gsnp_smallwin.bin");
  EXPECT_TRUE(report.identical) << report.detail;
}

TEST_F(Engines, DbSnpColumnMatchesPriorTable) {
  std::string name;
  const auto rows = read_snp_output(dir_ / "gsnp.bin", name);
  for (const auto& row : rows)
    EXPECT_EQ(row.in_dbsnp, dbsnp_->find(row.pos) != nullptr);
}

TEST_F(Engines, RefColumnMatchesReference) {
  std::string name;
  const auto rows = read_snp_output(dir_ / "gsnp.bin", name);
  ASSERT_EQ(rows.size(), ref_->size());
  for (u64 i = 0; i < ref_->size(); ++i) {
    EXPECT_EQ(rows[i].pos, i);
    EXPECT_EQ(rows[i].ref_base, ref_->base(i));
  }
}

TEST_F(Engines, MostPlantedSnpsDetected) {
  std::string name;
  const auto rows = read_snp_output(dir_ / "gsnp.bin", name);
  u64 found = 0, callable = 0;
  for (const auto& snp : *snps_) {
    const auto& row = rows[snp.pos];
    if (row.depth < 4) continue;
    ++callable;
    if (row.genotype_rank >= 0 &&
        genotype_from_rank(row.genotype_rank) == snp.genotype)
      ++found;
  }
  ASSERT_GT(callable, 20u);
  EXPECT_GT(static_cast<double>(found) / callable, 0.8);
}

// ---- consistency module itself --------------------------------------------------

TEST(Consistency, DetectsMismatches) {
  std::vector<SnpRow> a(3), b(3);
  a[1].pos = b[1].pos = 1;
  a[2].pos = b[2].pos = 2;
  b[2].quality = 42;
  const auto report = compare_rows(a, b);
  EXPECT_FALSE(report.identical);
  EXPECT_EQ(report.first_mismatch_row, 2u);
  EXPECT_NE(report.detail.find("row 2"), std::string::npos);
}

TEST(Consistency, DetectsLengthMismatch) {
  const auto report = compare_rows(std::vector<SnpRow>(2),
                                   std::vector<SnpRow>(3));
  EXPECT_FALSE(report.identical);
}

TEST(Consistency, IdenticalRows) {
  std::vector<SnpRow> a(5);
  for (u64 i = 0; i < 5; ++i) a[i].pos = i;
  const auto report = compare_rows(a, a);
  EXPECT_TRUE(report.identical);
  EXPECT_EQ(report.rows_compared, 5u);
}

}  // namespace
}  // namespace gsnp::core
