// Spool scrubber tests (src/service/fsck.hpp) against the committed
// corrupt-spool corpus (tests/corpus/spool/, see its README): stable
// verdicts per defect class, data-loss-free repairs that converge, fuzzed
// journals (PR 2 LineMutator) that never crash the scrubber, and
// Daemon::recover() surviving the whole mess.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "src/common/error.hpp"
#include "src/reads/fuzz.hpp"
#include "src/service/daemon.hpp"
#include "src/service/fsck.hpp"
#include "src/service/journal.hpp"

namespace gsnp::service {
namespace {

namespace fs = std::filesystem;

const fs::path kCorpusSpool = fs::path(GSNP_TEST_CORPUS_DIR) / "spool";

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

std::map<std::string, FsckVerdict> verdict_map(const FsckReport& report) {
  std::map<std::string, FsckVerdict> map;
  for (const FsckJobReport& job : report.jobs) map[job.job_id] = job.verdict;
  return map;
}

/// Repair mutates the spool, so every test works on a private copy.
class FsckCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fs::exists(kCorpusSpool)) << kCorpusSpool;
    dir_ = fs::temp_directory_path() / "gsnp_fsck_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    spool_ = dir_ / "spool";
    fs::copy(kCorpusSpool, spool_, fs::copy_options::recursive);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  fs::path spool_;
};

TEST_F(FsckCorpusTest, VerdictsAreStablePerDefectClass) {
  const FsckReport report = fsck_spool(spool_);  // read-only pass
  const auto verdicts = verdict_map(report);
  ASSERT_EQ(verdicts.size(), 8u) << report.summary();
  EXPECT_EQ(verdicts.at("cancelled-clean"), FsckVerdict::kClean);
  EXPECT_EQ(verdicts.at("done-no-manifest"), FsckVerdict::kResumable);
  EXPECT_EQ(verdicts.at("torn-staging"), FsckVerdict::kTornStaging);
  EXPECT_EQ(verdicts.at("orphan"), FsckVerdict::kOrphaned);
  EXPECT_EQ(verdicts.at("truncated-journal"),
            FsckVerdict::kCorruptQuarantined);
  EXPECT_EQ(verdicts.at("garbage-journal"), FsckVerdict::kCorruptQuarantined);
  EXPECT_EQ(verdicts.at("bad-state"), FsckVerdict::kCorruptQuarantined);
  EXPECT_EQ(verdicts.at("wrong-id"), FsckVerdict::kCorruptQuarantined);
  EXPECT_EQ(report.repairs_applied, 0u);  // no repair without opting in

  // A second read-only pass sees the identical picture (verdict stability).
  EXPECT_EQ(verdict_map(fsck_spool(spool_)), verdicts);
  EXPECT_FALSE(report.all_recoverable());
  EXPECT_FALSE(report.all_clean());
}

TEST_F(FsckCorpusTest, RepairConvergesToRecoverable) {
  FsckOptions repair;
  repair.repair = true;
  const FsckReport first = fsck_spool(spool_, repair);
  EXPECT_GT(first.repairs_applied, 0u);

  // Orphans went to lost+found, corrupt journals to quarantine — moved, not
  // deleted: repair never destroys bytes it can't re-derive.
  EXPECT_FALSE(fs::exists(spool_ / "jobs" / "orphan"));
  EXPECT_TRUE(fs::exists(spool_ / "lost+found" / "orphan" / "out" /
                         "chr9.gsnp.snp"));
  for (const char* id :
       {"truncated-journal", "garbage-journal", "bad-state", "wrong-id"}) {
    EXPECT_FALSE(fs::exists(spool_ / "jobs" / id)) << id;
    EXPECT_TRUE(fs::exists(spool_ / "quarantine" / id)) << id;
  }
  // The quarantined journal bytes survived verbatim for the operator.
  EXPECT_EQ(slurp(spool_ / "quarantine" / "garbage-journal" / "job.json"),
            slurp(kCorpusSpool / "jobs" / "garbage-journal" / "job.json"));

  // Staging residue is gone; the job that carried it is otherwise intact.
  EXPECT_FALSE(
      fs::exists(spool_ / "jobs" / "torn-staging" / "out" /
                 "chr1.gsnp.snp.part"));
  EXPECT_TRUE(fs::exists(spool_ / "jobs" / "torn-staging" / "job.json"));

  // The lying "done" job was demoted to interrupted with its digest cleared.
  const JobJournal demoted = parse_job_journal(
      slurp(spool_ / "jobs" / "done-no-manifest" / "job.json"));
  EXPECT_EQ(demoted.state, JobState::kInterrupted);
  EXPECT_TRUE(demoted.digest.empty());

  // Second pass: everything that remains is clean or resumable, and there
  // is nothing left to repair (convergence).
  const FsckReport second = fsck_spool(spool_, repair);
  EXPECT_TRUE(second.all_recoverable()) << second.summary();
  EXPECT_EQ(second.repairs_applied, 0u) << second.summary();
  // cancelled-clean + the two now-interrupted (resumable) survivors.
  EXPECT_EQ(second.jobs.size(), 3u);
}

TEST_F(FsckCorpusTest, FuzzedJournalsNeverCrashTheScrubber) {
  // Hundreds of corrupt journal shapes from one valid line: the PR 2
  // mutation fuzzer chews the cancelled-clean journal; every variant must
  // produce a verdict, never an escape or a crash.
  const std::string valid =
      slurp(kCorpusSpool / "jobs" / "cancelled-clean" / "job.json");
  reads::FuzzOptions options;
  options.rate = 1.0;
  for (u64 seed = 1; seed <= 40; ++seed) {
    options.seed = seed;
    reads::LineMutator mutator(options);
    for (int variant = 0; variant < 5; ++variant) {
      const fs::path job_dir =
          spool_ / "jobs" /
          ("fuzz-" + std::to_string(seed) + "-" + std::to_string(variant));
      fs::create_directories(job_dir);
      std::ofstream(job_dir / "job.json", std::ios::binary)
          << mutator.mutate(valid);
    }
  }
  FsckReport report;
  ASSERT_NO_THROW(report = fsck_spool(spool_));
  EXPECT_EQ(report.jobs.size(), 8u + 40u * 5u);
  for (const FsckJobReport& job : report.jobs) {
    // Any verdict is legal (a mutation can leave the line parseable); what
    // is not legal is a crash or an out-of-range verdict.
    EXPECT_NO_THROW((void)fsck_verdict_name(job.verdict)) << job.job_id;
  }
}

TEST_F(FsckCorpusTest, DaemonRecoverSurvivesTheCorpus) {
  DaemonConfig config;
  config.spool_dir = spool_;
  config.workers = 1;
  Daemon daemon(config);
  std::size_t resumed = 0;
  // recover() runs fsck (repairing) first, then re-admits what's left; the
  // corpus specs point at nonexistent inputs, so nothing actually resumes —
  // but nothing crashes either, and history is queryable.
  ASSERT_NO_THROW(resumed = daemon.recover());
  EXPECT_EQ(resumed, 0u);
  // last_fsck() reports the PRE-repair verdicts (what recover walked into);
  // the spool itself is scrubbed afterwards.
  EXPECT_EQ(daemon.last_fsck().jobs.size(), 8u);
  EXPECT_GT(daemon.last_fsck().repairs_applied, 0u);
  EXPECT_TRUE(fsck_spool(spool_).all_recoverable())
      << fsck_spool(spool_).summary();
  EXPECT_EQ(daemon.status("cancelled-clean").state, JobState::kCancelled);
  EXPECT_GT(daemon.metrics().counter("fsck_repairs"), 0u);
  EXPECT_EQ(daemon.metrics().counter("fsck_corrupt_quarantined"), 4u);
  EXPECT_EQ(daemon.metrics().counter("fsck_orphaned"), 1u);
}

TEST(FsckEmptySpool, NoJobsIsCleanlyEmpty) {
  const fs::path dir = fs::temp_directory_path() / "gsnp_fsck_empty";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const FsckReport report = fsck_spool(dir);
  EXPECT_TRUE(report.jobs.empty());
  EXPECT_TRUE(report.all_clean());
  EXPECT_EQ(report.summary(),
            "jobs=0 clean=0 resumable=0 torn_staging=0 orphaned=0 "
            "corrupt_quarantined=0 repairs=0");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace gsnp::service
