// Tests for the extension features beyond the core pipeline: the device
// posterior kernel, the prior cache, the multi-threaded SOAPsnp variant, and
// the frame-skipping range query on compressed output.

#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/consistency.hpp"
#include "src/core/engine.hpp"
#include "src/core/kernels.hpp"
#include "src/core/output_codec.hpp"
#include "src/core/posterior.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"

namespace gsnp::core {
namespace {

namespace fs = std::filesystem;

// ---- select_genotype / device_posterior parity ---------------------------------

TypeLikely random_tl(Rng& rng) {
  TypeLikely tl;
  for (auto& v : tl) v = -50.0 * rng.uniform_double();
  return tl;
}

TEST(DevicePosterior, MatchesHostSelectGenotype) {
  Rng rng(17);
  const PriorParams params;
  PriorCache cache(params);

  std::vector<TypeLikely> tls(500);
  std::vector<GenotypePriors> priors(500);
  std::vector<PosteriorCall> expected(500);
  for (std::size_t i = 0; i < tls.size(); ++i) {
    tls[i] = random_tl(rng);
    priors[i] = cache.get(static_cast<u8>(rng.uniform(4)), nullptr);
    expected[i] = select_genotype(priors[i], tls[i]);
  }

  device::Device dev;
  const auto calls = device_posterior(dev, tls, priors);
  ASSERT_EQ(calls.size(), expected.size());
  for (std::size_t i = 0; i < calls.size(); ++i) {
    EXPECT_EQ(calls[i].best, expected[i].best) << i;
    EXPECT_EQ(calls[i].second, expected[i].second) << i;
    EXPECT_EQ(calls[i].quality, expected[i].quality) << i;
  }
}

TEST(DevicePosterior, EmptyInput) {
  device::Device dev;
  EXPECT_TRUE(device_posterior(dev, {}, {}).empty());
}

TEST(SelectGenotype, TieBreaksDeterministically) {
  GenotypePriors prior{};
  TypeLikely tl{};  // all equal -> best must be genotype 0, second 1
  const PosteriorCall call = select_genotype(prior, tl);
  EXPECT_EQ(call.best, 0);
  EXPECT_EQ(call.second, 1);
  EXPECT_EQ(call.quality, 0);
}

// ---- PriorCache -------------------------------------------------------------------

TEST(PriorCacheTest, NovelPriorsMatchDirectComputation) {
  const PriorParams params;
  PriorCache cache(params);
  for (u8 b = 0; b < kNumBases; ++b) {
    const GenotypePriors direct = genotype_log_priors(b, nullptr, params);
    const GenotypePriors& cached = cache.get(b, nullptr);
    for (int g = 0; g < kNumGenotypes; ++g) EXPECT_EQ(cached[g], direct[g]);
  }
  // 'N' reference.
  const GenotypePriors direct_n =
      genotype_log_priors(kInvalidBase, nullptr, params);
  EXPECT_EQ(cache.get(kInvalidBase, nullptr)[0], direct_n[0]);
}

TEST(PriorCacheTest, KnownSitesComputedFresh) {
  const PriorParams params;
  PriorCache cache(params);
  genome::KnownSnpEntry known;
  known.freq = {0.5, 0.0, 0.5, 0.0};
  const GenotypePriors direct = genotype_log_priors(0, &known, params);
  const GenotypePriors& cached = cache.get(0, &known);
  for (int g = 0; g < kNumGenotypes; ++g) EXPECT_EQ(cached[g], direct[g]);
}

// ---- multi-threaded SOAPsnp + range query (shared dataset) -------------------------

class Extensions : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_ext_test";
    fs::create_directories(dir_);
    genome::GenomeSpec gspec;
    gspec.name = "chrX";
    gspec.length = 12'000;
    ref_ = genome::generate_reference(gspec);
    genome::SnpPlantSpec pspec;
    pspec.snp_rate = 0.003;
    const auto snps = genome::plant_snps(ref_, pspec);
    const genome::Diploid individual(ref_, snps);
    reads::ReadSimSpec rspec;
    rspec.depth = 8.0;
    reads::write_alignment_file(dir_ / "a.soap",
                                reads::simulate_reads(individual, rspec));

    config_.alignment_file = dir_ / "a.soap";
    config_.reference = &ref_;
    config_.temp_file = dir_ / "a.tmp";
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  genome::Reference ref_;
  EngineConfig config_;
};

TEST_F(Extensions, MultiThreadedSoapsnpIdenticalToSingleThreaded) {
  config_.output_file = dir_ / "t1.txt";
  config_.soapsnp_threads = 1;
  run_soapsnp(config_);
  config_.output_file = dir_ / "t4.txt";
  config_.soapsnp_threads = 4;
  run_soapsnp(config_);
  const auto report = compare_output_files(dir_ / "t1.txt", dir_ / "t4.txt");
  EXPECT_TRUE(report.identical) << report.detail;
}

TEST_F(Extensions, RangeQueryMatchesFullScanFilter) {
  config_.output_file = dir_ / "out.bin";
  config_.window_size = 1'000;  // many frames, so skipping is exercised
  device::Device dev;
  run_gsnp(config_, dev);

  std::string name_a, name_b;
  const auto all = read_snp_output(dir_ / "out.bin", name_a);
  for (const auto [lo, hi] : {std::pair<u64, u64>{3'500, 4'200},
                              {0, 500},
                              {11'000, 99'999},
                              {5'000, 5'001},
                              {12'000, 13'000}}) {
    const auto ranged = read_snp_range(dir_ / "out.bin", lo, hi, name_b);
    std::vector<SnpRow> expected;
    for (const auto& row : all)
      if (row.pos >= lo && row.pos < hi) expected.push_back(row);
    EXPECT_EQ(ranged, expected) << "range [" << lo << "," << hi << ")";
  }
}

TEST_F(Extensions, RangeQueryEmptyRange) {
  config_.output_file = dir_ / "out2.bin";
  config_.window_size = 4'096;
  device::Device dev;
  run_gsnp(config_, dev);
  std::string name;
  EXPECT_TRUE(read_snp_range(dir_ / "out2.bin", 500, 500, name).empty());
}

TEST_F(Extensions, PairedEndDatasetKeepsEngineConsistency) {
  // Paired-end reads (shared fragment ids, opposite strands) flow through
  // the same per-site machinery; all engines must still agree exactly.
  genome::GenomeSpec gspec;
  gspec.name = "chrP";
  gspec.length = 10'000;
  const genome::Reference pref = genome::generate_reference(gspec);
  genome::SnpPlantSpec pspec;
  pspec.snp_rate = 0.003;
  const auto snps = genome::plant_snps(pref, pspec);
  const genome::Diploid individual(pref, snps);
  reads::ReadSimSpec rspec;
  rspec.depth = 8.0;
  rspec.paired_end = true;
  reads::write_alignment_file(dir_ / "pe.soap",
                              reads::simulate_reads(individual, rspec));

  EngineConfig config;
  config.alignment_file = dir_ / "pe.soap";
  config.reference = &pref;
  config.temp_file = dir_ / "pe.tmp";

  config.output_file = dir_ / "pe_soapsnp.txt";
  run_soapsnp(config);
  config.output_file = dir_ / "pe_gsnp.snp";
  device::Device dev;
  run_gsnp(config, dev);
  const auto report =
      compare_output_files(dir_ / "pe_soapsnp.txt", dir_ / "pe_gsnp.snp");
  EXPECT_TRUE(report.identical) << report.detail;
}

TEST_F(Extensions, GsnpWithoutDbSnpRuns) {
  // config_.dbsnp is already null: every row's dbSNP flag must be false.
  config_.output_file = dir_ / "nodb.bin";
  device::Device dev;
  run_gsnp(config_, dev);
  std::string name;
  for (const auto& row : read_snp_output(dir_ / "nodb.bin", name))
    EXPECT_FALSE(row.in_dbsnp);
}

}  // namespace
}  // namespace gsnp::core
