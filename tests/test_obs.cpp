// Tests for src/obs: span nesting, the null-sink cost model, the two
// exporters (Chrome trace_event JSON + compact metrics JSON), device-counter
// capture per span, and the end-to-end guarantee the layer exists for —
// the trace's per-stage totals equal the RunReport breakdown (Tables I/IV).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/common/json.hpp"
#include "src/core/engine.hpp"
#include "src/device/device.hpp"
#include "src/device/perf_model.hpp"
#include "src/genome/synthetic.hpp"
#include "src/obs/trace.hpp"
#include "src/reads/simulator.hpp"
#include "src/sortnet/multipass.hpp"
#include "src/sortnet/var_arrays.hpp"

namespace gsnp::obs {
namespace {

namespace fs = std::filesystem;

fs::path temp_file(const char* name) {
  return fs::temp_directory_path() / name;
}

// ---- spans & nesting -------------------------------------------------------

TEST(Span, NullTracerIsANoop) {
  Tracer::Scope scope(nullptr, "anything", "stage");
  scope.note("key", "value");          // must be safe on the null sink
  scope.set_host_seconds(42.0);
}

TEST(Span, NestedScopesDeriveParents) {
  Tracer tracer;
  {
    Tracer::Scope outer(&tracer, "outer", "stage");
    {
      Tracer::Scope inner(&tracer, "inner", "stage");
      Tracer::Scope sibling_free(nullptr, "ignored", "stage");
    }
    Tracer::Scope second(&tracer, "second", "stage");
  }
  const auto spans = tracer.spans();  // completion order: inner, second, outer
  ASSERT_EQ(spans.size(), 3u);
  const SpanRecord& inner = spans[0];
  const SpanRecord& second = spans[1];
  const SpanRecord& outer = spans[2];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(second.parent, outer.id);
  EXPECT_GE(inner.start_ns, outer.start_ns);
}

TEST(Span, ThreadsGetDistinctRootsAndIndices) {
  Tracer tracer;
  {
    Tracer::Scope main_span(&tracer, "main", "stage");
    std::thread worker([&tracer] {
      // The per-thread scope stack means another thread's open span is NOT
      // this span's parent.
      Tracer::Scope span(&tracer, "worker", "stage");
    });
    worker.join();
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "worker");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_NE(spans[0].thread, spans[1].thread);
}

TEST(Span, HostSecondsOverrideFeedsTableSeconds) {
  Tracer tracer;
  {
    Tracer::Scope span(&tracer, "output", "stage");
    span.set_host_seconds(1.25);
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].host_sec, 1.25);
  EXPECT_DOUBLE_EQ(spans[0].table_seconds(), 1.25);
  EXPECT_GT(spans[0].duration_ns, 0u);  // wall duration still recorded
}

// ---- device-counter capture ------------------------------------------------

TEST(Span, DeviceDeltaMatchesGlobalCounterDelta) {
  // One known kernel — a single multipass size class of the batch bitonic
  // sort — captured by a span must show exactly the device's own global
  // counter movement over the same region.
  device::Device dev;
  sortnet::VarArrays va = sortnet::equal_var_arrays(64, 16, 1u << 16, 7);

  Tracer tracer;
  const device::DeviceCounters before = dev.counters();
  {
    Tracer::Scope span(&tracer, "bitonic", "sort", &dev);
    sortnet::sort_device_multipass(dev, va);
  }
  const device::DeviceCounters delta =
      device::counters_delta(before, dev.counters());

  const auto spans = tracer.spans();
  // The engine-level span plus the per-pass spans emitted by the sorter
  // (sort_device_multipass got no tracer here, so exactly one span).
  ASSERT_EQ(spans.size(), 1u);
  const SpanRecord& s = spans[0];
  ASSERT_TRUE(s.has_device);
  EXPECT_GT(delta.instructions, 0u);
  EXPECT_EQ(s.device.instructions, delta.instructions);
  EXPECT_EQ(s.device.global_loads(), delta.global_loads());
  EXPECT_EQ(s.device.global_stores(), delta.global_stores());
  EXPECT_EQ(s.device.shared_loads, delta.shared_loads);
  EXPECT_EQ(s.device.shared_stores, delta.shared_stores);
  EXPECT_EQ(s.device.h2d_bytes, delta.h2d_bytes);
  EXPECT_EQ(s.device.d2h_bytes, delta.d2h_bytes);
  EXPECT_EQ(s.device.kernel_launches, delta.kernel_launches);
  EXPECT_DOUBLE_EQ(s.modeled_sec, device::PerfModel{}.seconds(delta));
}

TEST(Span, DeviceTotalsSkipCoveredChildren) {
  // A device span nested in another device span must not double-count: the
  // parent's delta already contains the child's.
  device::Device dev;
  Tracer tracer;
  {
    Tracer::Scope outer(&tracer, "outer", "stage", &dev);
    auto buf = dev.to_device(std::span<const u32>(std::vector<u32>(256, 1)));
    {
      Tracer::Scope inner(&tracer, "inner", "transfer", &dev);
      (void)dev.to_host(buf);
    }
  }
  const device::DeviceCounters totals = tracer.device_totals();
  EXPECT_EQ(totals.h2d_bytes, 1024u);
  EXPECT_EQ(totals.d2h_bytes, 1024u);  // once, not twice
}

TEST(Span, SortPassSpansComeFromTheSorter) {
  device::Device dev;
  sortnet::VarArrays va =
      sortnet::random_var_arrays(300, 10.0, 100, 1u << 16, 5);
  Tracer tracer;
  const auto stats = sortnet::sort_device_multipass(
      dev, va, sortnet::kDefaultClassBounds, &tracer);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), stats.passes);
  u64 padded = 0;
  for (const auto& s : spans) {
    EXPECT_EQ(s.name, "sort_pass");
    EXPECT_EQ(s.category, "sort");
    EXPECT_TRUE(s.has_device);
    // batch_size * arrays notes reconstruct the padded work per pass.
    u64 batch = 0, arrays = 0;
    for (const auto& [k, v] : s.args) {
      if (k == "batch_size") batch = std::stoull(v);
      if (k == "arrays") arrays = std::stoull(v);
    }
    padded += batch * arrays;
  }
  EXPECT_EQ(padded, stats.elements_padded);
}

// ---- metrics registry ------------------------------------------------------

TEST(MetricsRegistry, CountersAndGauges) {
  Metrics m;
  m.add("runs");
  m.add("sites", 100);
  m.add("sites", 23);
  m.set_gauge("throughput", 4.5);
  m.set_gauge("throughput", 9.0);  // last write wins
  EXPECT_EQ(m.counter("runs"), 1u);
  EXPECT_EQ(m.counter("sites"), 123u);
  EXPECT_EQ(m.counter("never"), 0u);
  EXPECT_DOUBLE_EQ(m.gauge("throughput"), 9.0);
  m.clear();
  EXPECT_EQ(m.counter("sites"), 0u);
}

// ---- exporters -------------------------------------------------------------

TEST(ChromeTrace, ParsesAndSpansNest) {
  Tracer tracer;
  device::Device dev;
  {
    Tracer::Scope outer(&tracer, "window", "stage");
    outer.note("engine", "gsnp");
    {
      Tracer::Scope inner(&tracer, "h2d \"quoted\"", "transfer", &dev);
      (void)dev.to_device(std::span<const u32>(std::vector<u32>(16, 2)));
    }
  }
  const fs::path path = temp_file("gsnp_obs_trace.json");
  write_chrome_trace(path, tracer);

  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const json::Value root = json::parse(buf.str());  // must be valid JSON
  ASSERT_EQ(root.kind, json::Value::Kind::kObject);
  const json::Value* events = json::find(root, "traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, json::Value::Kind::kArray);
  ASSERT_EQ(events->array.size(), 2u);

  const json::Value* inner_ev = nullptr;
  const json::Value* outer_ev = nullptr;
  for (const json::Value& ev : events->array) {
    EXPECT_EQ(json::get_string(ev, "ph"), "X");
    if (json::get_string(ev, "name") == "window") outer_ev = &ev;
    else inner_ev = &ev;
  }
  ASSERT_NE(inner_ev, nullptr);
  ASSERT_NE(outer_ev, nullptr);
  EXPECT_EQ(json::get_string(*inner_ev, "name"), "h2d \"quoted\"");

  const json::Value* outer_args = json::find(*outer_ev, "args");
  const json::Value* inner_args = json::find(*inner_ev, "args");
  ASSERT_NE(outer_args, nullptr);
  ASSERT_NE(inner_args, nullptr);
  // Spans nest: the child's parent arg is the parent's id, the child's
  // [ts, ts+dur] interval sits inside the parent's.
  EXPECT_EQ(json::get_u64(*outer_args, "parent"), 0u);
  EXPECT_EQ(json::get_u64(*inner_args, "parent"),
            json::get_u64(*outer_args, "id"));
  EXPECT_EQ(json::get_string(*outer_args, "engine"), "gsnp");
  const double o_ts = json::get_number(*outer_ev, "ts");
  const double o_end = o_ts + json::get_number(*outer_ev, "dur");
  const double i_ts = json::get_number(*inner_ev, "ts");
  const double i_end = i_ts + json::get_number(*inner_ev, "dur");
  EXPECT_GE(i_ts, o_ts);
  EXPECT_LE(i_end, o_end + 1e-6);
  // The device span carries its counter delta.
  EXPECT_EQ(json::get_u64(*inner_args, "dev_h2d_bytes"), 64u);
  fs::remove(path);
}

TEST(MetricsJson, RoundTrips) {
  Tracer tracer;
  SpanRecord a;
  a.name = "likeli";
  a.category = "stage";
  a.host_sec = 0.0;
  a.modeled_sec = 1.5;
  tracer.add_complete(std::move(a));
  SpanRecord b;
  b.name = "likeli";
  b.category = "stage";
  b.host_sec = 0.25;
  tracer.add_complete(std::move(b));
  SpanRecord c;
  c.name = "not_a_stage";
  c.category = "pipeline";
  c.host_sec = 99.0;
  tracer.add_complete(std::move(c));
  tracer.metrics().add("windows", 7);
  tracer.metrics().set_gauge("sites_per_sec", 1234.5);

  const fs::path path = temp_file("gsnp_obs_metrics.json");
  write_metrics_json(path, tracer);
  const MetricsSnapshot snap = read_metrics_json(path);

  ASSERT_EQ(snap.stages.size(), 1u);  // "pipeline" spans are not stages
  EXPECT_NEAR(snap.stages.at("likeli"), 1.75, 1e-9);
  EXPECT_EQ(snap.counters.at("windows"), 7u);
  EXPECT_NEAR(snap.gauges.at("sites_per_sec"), 1234.5, 1e-9);
  fs::remove(path);
}

// ---- the end-to-end guarantee ---------------------------------------------

class TracedEngines : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_obs_engine_test";
    fs::create_directories(dir_);
    genome::GenomeSpec gspec;
    gspec.name = "chrT";
    gspec.length = 12'000;
    ref_ = genome::generate_reference(gspec);
    const auto snps = plant_snps(ref_, {});
    const genome::Diploid individual(ref_, snps);
    reads::ReadSimSpec rspec;
    rspec.depth = 8.0;
    reads::write_alignment_file(dir_ / "a.soap",
                                reads::simulate_reads(individual, rspec));
    config_.alignment_file = dir_ / "a.soap";
    config_.reference = &ref_;
    config_.temp_file = dir_ / "a.tmp";
    config_.window_size = 4'096;
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Every component of the report must agree with the trace's per-stage
  /// totals (the acceptance bar is 1%; construction makes it ~exact, the
  /// slack only absorbs floating-point accumulation-order noise).
  static void expect_breakdown_matches(const core::RunReport& report,
                                       const Tracer& tracer) {
    const auto breakdown = tracer.stage_breakdown();
    for (const char* name : core::kComponents) {
      const double table = report.component(name);
      const auto it = breakdown.find(name);
      const double traced = it == breakdown.end() ? 0.0 : it->second;
      EXPECT_NEAR(traced, table, 0.01 * std::max(table, 1e-9))
          << "component " << name;
    }
  }

  fs::path dir_;
  genome::Reference ref_;
  core::EngineConfig config_;
};

TEST_F(TracedEngines, SoapsnpBreakdownMatchesReport) {
  Tracer tracer;
  config_.tracer = &tracer;
  config_.output_file = dir_ / "out.txt";
  const core::RunReport report = core::run_soapsnp(config_);
  expect_breakdown_matches(report, tracer);
  EXPECT_EQ(tracer.metrics().counter("runs_soapsnp"), 1u);
  EXPECT_EQ(tracer.metrics().counter("sites"), report.sites);
}

TEST_F(TracedEngines, GsnpCpuBreakdownMatchesReport) {
  Tracer tracer;
  config_.tracer = &tracer;
  config_.output_file = dir_ / "out.bin";
  const core::RunReport report = core::run_gsnp_cpu(config_);
  expect_breakdown_matches(report, tracer);
  // The sub-phase detail rows agree too.
  const auto breakdown = tracer.stage_breakdown();
  EXPECT_NEAR(breakdown.at("likeli_sort"), report.host.get("likeli_sort"),
              1e-9);
  EXPECT_NEAR(breakdown.at("likeli_comp"), report.host.get("likeli_comp"),
              1e-9);
}

TEST_F(TracedEngines, GsnpBreakdownAndDeviceTotalsMatchReport) {
  Tracer tracer;
  config_.tracer = &tracer;
  config_.output_file = dir_ / "out.bin";
  device::Device dev;
  const core::RunReport report = core::run_gsnp(config_, dev);
  expect_breakdown_matches(report, tracer);

  // Every device operation of the run happens under some device-capturing
  // span, and ancestor dedup prevents double counting — so the tracer's
  // device totals are exactly the device's own lifetime counters.
  const device::DeviceCounters totals = tracer.device_totals();
  EXPECT_EQ(totals.instructions, dev.counters().instructions);
  EXPECT_EQ(totals.h2d_bytes, dev.counters().h2d_bytes);
  EXPECT_EQ(totals.d2h_bytes, dev.counters().d2h_bytes);
  EXPECT_EQ(totals.kernel_launches, dev.counters().kernel_launches);
  EXPECT_EQ(tracer.device_peak_bytes(), report.peak_device_bytes);

  // The per-window sort passes and RLE compression calls left their spans.
  const auto spans = tracer.spans();
  int sort_passes = 0, rle_calls = 0, transfers = 0;
  for (const auto& s : spans) {
    if (s.category == "sort") ++sort_passes;
    if (s.category == "compress") ++rle_calls;
    if (s.category == "transfer") ++transfers;
  }
  EXPECT_GT(sort_passes, 0);
  EXPECT_GT(rle_calls, 0);
  EXPECT_GT(transfers, 0);

  // And the exports round-trip with the same stage totals.
  const fs::path mpath = dir_ / "metrics.json";
  write_metrics_json(mpath, tracer);
  const MetricsSnapshot snap = read_metrics_json(mpath);
  for (const char* name : core::kComponents)
    EXPECT_NEAR(snap.stages.at(name), report.component(name),
                0.01 * std::max(report.component(name), 1e-9))
        << name;
}

}  // namespace
}  // namespace gsnp::obs
