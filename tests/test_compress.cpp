// Unit and property tests for the compression module: column codecs, zlib
// wrapper, device RLE-DICT parity, and the temporary-input codec.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/compress/codecs.hpp"
#include "src/compress/device_rledict.hpp"
#include "src/compress/temp_input.hpp"
#include "src/compress/zlibwrap.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"

namespace gsnp::compress {
namespace {

namespace fs = std::filesystem;

/// Column shapes the codecs must handle; mirrors the real output columns.
enum class Shape { kConstant, kRunny, kRandomSmall, kSparse, kEmpty, kSingle };

std::vector<u32> make_column(Shape shape, u64 seed) {
  Rng rng(seed);
  std::vector<u32> column;
  switch (shape) {
    case Shape::kConstant:
      column.assign(500, 37);
      break;
    case Shape::kRunny:
      while (column.size() < 1000) {
        const u32 v = static_cast<u32>(rng.uniform(50));
        const u64 run = 1 + rng.uniform(30);
        column.insert(column.end(), run, v);
      }
      break;
    case Shape::kRandomSmall:
      column.resize(800);
      for (auto& v : column) v = static_cast<u32>(rng.uniform(97));
      break;
    case Shape::kSparse:
      column.assign(1000, 0);
      for (int i = 0; i < 30; ++i)
        column[rng.uniform(1000)] = static_cast<u32>(1 + rng.uniform(255));
      break;
    case Shape::kEmpty:
      break;
    case Shape::kSingle:
      column.assign(1, 123456);
      break;
  }
  return column;
}

class CodecShapes
    : public ::testing::TestWithParam<std::pair<Shape, u64>> {};

TEST_P(CodecShapes, RleRoundTrip) {
  const auto [shape, seed] = GetParam();
  const auto column = make_column(shape, seed);
  std::vector<u8> buf;
  encode_rle(column, buf);
  std::size_t pos = 0;
  EXPECT_EQ(decode_rle(buf, pos), column);
  EXPECT_EQ(pos, buf.size());
}

TEST_P(CodecShapes, DictRoundTrip) {
  const auto [shape, seed] = GetParam();
  const auto column = make_column(shape, seed);
  std::vector<u8> buf;
  encode_dict(column, buf);
  std::size_t pos = 0;
  EXPECT_EQ(decode_dict(buf, pos), column);
  EXPECT_EQ(pos, buf.size());
}

TEST_P(CodecShapes, RleDictRoundTrip) {
  const auto [shape, seed] = GetParam();
  const auto column = make_column(shape, seed);
  std::vector<u8> buf;
  encode_rle_dict(column, buf);
  std::size_t pos = 0;
  EXPECT_EQ(decode_rle_dict(buf, pos), column);
  EXPECT_EQ(pos, buf.size());
}

TEST_P(CodecShapes, SparseRoundTrip) {
  const auto [shape, seed] = GetParam();
  const auto column = make_column(shape, seed);
  std::vector<u8> buf;
  encode_sparse(column, buf);
  std::size_t pos = 0;
  EXPECT_EQ(decode_sparse(buf, pos), column);
}

TEST_P(CodecShapes, DeviceRleDictMatchesHostBytes) {
  const auto [shape, seed] = GetParam();
  const auto column = make_column(shape, seed);
  std::vector<u8> host_bytes, device_bytes;
  encode_rle_dict(column, host_bytes);
  device::Device dev;
  device_encode_rle_dict(dev, column, device_bytes);
  EXPECT_EQ(device_bytes, host_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CodecShapes,
    ::testing::Values(std::pair{Shape::kConstant, 1ull},
                      std::pair{Shape::kRunny, 2ull},
                      std::pair{Shape::kRunny, 3ull},
                      std::pair{Shape::kRandomSmall, 4ull},
                      std::pair{Shape::kSparse, 5ull},
                      std::pair{Shape::kEmpty, 6ull},
                      std::pair{Shape::kSingle, 7ull}));

// ---- pack_bases -------------------------------------------------------------

TEST(PackBases, RoundTrip) {
  std::vector<u8> bases = {0, 1, 2, 3, 3, 2, 1, 0, 2};
  std::vector<u8> buf;
  pack_bases(bases, buf);
  std::size_t pos = 0;
  EXPECT_EQ(unpack_bases(buf, pos), bases);
  // 9 bases -> varint(9) + 3 payload bytes.
  EXPECT_EQ(buf.size(), 4u);
}

TEST(PackBases, RejectsOutOfRange) {
  std::vector<u8> bases = {0, 4};
  std::vector<u8> buf;
  EXPECT_THROW(pack_bases(bases, buf), Error);
}

TEST(PackBases, QuarterByteDensity) {
  std::vector<u8> bases(4000, 2);
  std::vector<u8> buf;
  pack_bases(bases, buf);
  EXPECT_LE(buf.size(), 1003u);
}

// ---- run decomposition ---------------------------------------------------------

TEST(RunDecompose, KnownCase) {
  const std::vector<u32> column = {5, 5, 5, 2, 9, 9};
  const RunDecomposition runs = run_decompose(column);
  EXPECT_EQ(runs.values, (std::vector<u32>{5, 2, 9}));
  EXPECT_EQ(runs.lengths, (std::vector<u32>{3, 1, 2}));
  EXPECT_EQ(run_compose(runs), column);
}

TEST(RunDecompose, DeviceMatchesHost) {
  for (const u64 seed : {10ull, 11ull, 12ull}) {
    const auto column = make_column(Shape::kRunny, seed);
    const RunDecomposition host = run_decompose(column);
    device::Device dev;
    const RunDecomposition device = device_run_decompose(dev, column);
    EXPECT_EQ(device.values, host.values);
    EXPECT_EQ(device.lengths, host.lengths);
  }
}

TEST(DeviceDict, MatchesHostDictionary) {
  const auto column = make_column(Shape::kRandomSmall, 21);
  device::Device dev;
  const DictMapping m = device_build_dict(dev, column);
  EXPECT_EQ(m.dict, build_dictionary(column));
  ASSERT_EQ(m.indices.size(), column.size());
  for (std::size_t i = 0; i < column.size(); ++i)
    EXPECT_EQ(m.dict[m.indices[i]], column[i]);
}

// ---- exceptions codec ----------------------------------------------------------

TEST(Exceptions, RoundTripWithFewDiffs) {
  std::vector<u32> predicted(1000, 7);
  std::vector<u32> actual = predicted;
  actual[3] = 9;
  actual[500] = 0;
  actual[999] = 1;
  std::vector<u8> buf;
  encode_exceptions(actual, predicted, buf);
  std::size_t pos = 0;
  EXPECT_EQ(decode_exceptions(predicted, buf, pos), actual);
  EXPECT_LT(buf.size(), 20u);  // three exceptions, a handful of bytes
}

TEST(Exceptions, SizeMismatchThrows) {
  std::vector<u32> a(5), b(6);
  std::vector<u8> buf;
  EXPECT_THROW(encode_exceptions(a, b, buf), Error);
}

// ---- quantized doubles ------------------------------------------------------------

TEST(Quantized, RoundTripOnGrid) {
  std::vector<double> values = {0.0, 0.5, 0.1234, 1.0, 0.9999};
  std::vector<u8> buf;
  encode_quantized(values, 1e4, buf);
  std::size_t pos = 0;
  const auto decoded = decode_quantized(buf, pos);
  ASSERT_EQ(decoded.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_DOUBLE_EQ(decoded[i], values[i]);
}

TEST(Quantized, OffGridThrows) {
  std::vector<double> values = {0.12345};  // not on the 1e-4 grid
  std::vector<u8> buf;
  EXPECT_THROW(encode_quantized(values, 1e4, buf), Error);
}

// ---- zlib ---------------------------------------------------------------------------

TEST(Zlib, RoundTrip) {
  Rng rng(31);
  std::vector<u8> data(10000);
  for (auto& b : data) b = static_cast<u8>(rng.uniform(5));  // compressible
  const auto packed = zlib_compress(data);
  EXPECT_LT(packed.size(), data.size() / 2);
  EXPECT_EQ(zlib_decompress(packed), data);
}

TEST(Zlib, EmptyInput) {
  const std::vector<u8> empty;
  EXPECT_EQ(zlib_decompress(zlib_compress(empty)), empty);
}

// ---- codec effectiveness (the paper's premise) ----------------------------------------

TEST(Effectiveness, RleDictBeatsRawOnQualityLikeColumns) {
  const auto column = make_column(Shape::kRunny, 41);
  std::vector<u8> buf;
  encode_rle_dict(column, buf);
  EXPECT_LT(buf.size(), column.size());  // < 1 byte per 4-byte value
}

TEST(Effectiveness, SparseBeatsDenseOnSecondAlleleColumns) {
  const auto column = make_column(Shape::kSparse, 42);
  std::vector<u8> buf;
  encode_sparse(column, buf);
  EXPECT_LT(buf.size(), 200u);  // 30 non-zeros out of 1000
}

// ---- temp input codec -------------------------------------------------------------------

class TempInput : public ::testing::Test {
 protected:
  void SetUp() override {
    genome::GenomeSpec gspec;
    gspec.length = 20000;
    ref_ = genome::generate_reference(gspec);
    individual_.emplace(ref_, std::vector<genome::PlantedSnp>{});
    reads::ReadSimSpec rspec;
    rspec.depth = 5.0;
    records_ = reads::simulate_reads(*individual_, rspec);
  }
  genome::Reference ref_;
  std::optional<genome::Diploid> individual_;
  std::vector<reads::AlignmentRecord> records_;
};

TEST_F(TempInput, ChunkRoundTripPreservesEverythingButIds) {
  const auto chunk = encode_alignment_chunk(records_);
  const auto decoded = decode_alignment_chunk(chunk, ref_.name());
  ASSERT_EQ(decoded.size(), records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    EXPECT_EQ(decoded[i].seq, records_[i].seq);
    EXPECT_EQ(decoded[i].qual, records_[i].qual);
    EXPECT_EQ(decoded[i].pos, records_[i].pos);
    EXPECT_EQ(decoded[i].strand, records_[i].strand);
    EXPECT_EQ(decoded[i].hit_count, records_[i].hit_count);
    EXPECT_EQ(decoded[i].length, records_[i].length);
    EXPECT_EQ(decoded[i].pair_tag, records_[i].pair_tag);
    EXPECT_EQ(decoded[i].chr_name, ref_.name());
    EXPECT_TRUE(decoded[i].read_id.empty());  // ids are dropped by design
  }
}

TEST_F(TempInput, FileRoundTripStreaming) {
  const fs::path path = fs::temp_directory_path() / "gsnp_test.tmp";
  TempInputWriter writer(path, ref_.name(), /*chunk_records=*/100);
  for (const auto& rec : records_) writer.add(rec);
  const u64 bytes = writer.finish();
  EXPECT_GT(bytes, 0u);

  TempInputReader reader(path);
  std::size_t i = 0;
  while (auto rec = reader.next()) {
    ASSERT_LT(i, records_.size());
    EXPECT_EQ(rec->pos, records_[i].pos);
    EXPECT_EQ(rec->seq, records_[i].seq);
    ++i;
  }
  EXPECT_EQ(i, records_.size());
  fs::remove(path);
}

TEST_F(TempInput, CompressionBeatsTextFormat) {
  u64 text_bytes = 0;
  for (const auto& rec : records_)
    text_bytes += reads::format_alignment(rec).size() + 1;
  const auto chunk = encode_alignment_chunk(records_);
  // Paper §V-A / Fig 10(b): compressed temp input is ~1/3 of the original.
  EXPECT_LT(chunk.size(), text_bytes / 2);
}

TEST(TempInputEdge, EmptyChunk) {
  const auto chunk =
      encode_alignment_chunk(std::vector<reads::AlignmentRecord>{});
  const auto decoded = decode_alignment_chunk(chunk, "c");
  EXPECT_TRUE(decoded.empty());
}

TEST(TempInputEdge, UnsortedRecordsRejected) {
  std::vector<reads::AlignmentRecord> recs(2);
  recs[0].pos = 10;
  recs[0].length = 4;
  recs[0].seq = "ACGT";
  recs[0].qual = "IIII";
  recs[1] = recs[0];
  recs[1].pos = 5;
  EXPECT_THROW(encode_alignment_chunk(recs), Error);
}

TEST(TempInputEdge, NBasesSurvive) {
  std::vector<reads::AlignmentRecord> recs(1);
  recs[0].pos = 0;
  recs[0].length = 5;
  recs[0].seq = "ACNGT";
  recs[0].qual = "IIIII";
  const auto decoded =
      decode_alignment_chunk(encode_alignment_chunk(recs), "c");
  EXPECT_EQ(decoded[0].seq, "ACNGT");
}

}  // namespace
}  // namespace gsnp::compress
