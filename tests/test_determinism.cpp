// The determinism battery (overlapped-pipeline lockdown).
//
// The overlapped engine paths (EngineConfig::streams >= 2) promise output
// *byte-identical* to the serial reference path, for any stream count, any
// pipeline depth and any host thread-pool size.  This file is the contract's
// enforcement: it runs the full pipeline repeatedly — twice serially and
// under several overlapped configurations — across all three engines, and
// asserts byte-identical raw output, byte-identical VCF conversion,
// identical manifest digests and identical device counters.
//
// A second section pins the end-to-end result against committed golden
// SHA-256 hashes (tests/corpus/golden/), so a cross-PR behavioral drift is
// caught even if serial and overlapped paths drift *together*.  Regenerate
// with GSNP_UPDATE_GOLDEN=1 after an intentional output change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/sha256.hpp"
#include "src/core/backend.hpp"
#include "src/core/consistency.hpp"
#include "src/core/genome_pipeline.hpp"
#include "src/core/run_manifest.hpp"
#include "src/core/simd.hpp"
#include "src/core/vcf.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"

namespace gsnp::core {
namespace {

namespace fs = std::filesystem;

std::string read_file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// One overlapped-pipeline configuration under test.
struct PipelineVariant {
  const char* label;
  u32 streams;
  u32 pipeline_depth;
  u32 host_threads;
  /// Depth-aware batching budget (0 = fixed windows).  Small enough values
  /// split every window, exercising the batched engine paths.
  u64 batch_bytes = 0;
};

/// Everything a run produced that determinism covers: raw output bytes per
/// chromosome, the VCF conversion of each, the canonical manifest digest,
/// and (GSNP engine) the device counters.
struct RunFingerprint {
  std::vector<std::string> output_bytes;
  std::vector<std::string> vcf_bytes;
  std::string manifest_digest;
  device::DeviceCounters counters;
};

class DeterminismBattery : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_determinism_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    // Two chromosomes, window 2,048 => several windows each, so the
    // double-buffered pipeline genuinely rotates slots and every stage
    // overlaps at least once.
    const struct { const char* name; u64 length; u64 seed; } specs[] = {
        {"chrD1", 9'000, 70}, {"chrD2", 6'500, 80}};
    for (const auto& s : specs) {
      genome::GenomeSpec gspec;
      gspec.name = s.name;
      gspec.length = s.length;
      gspec.seed = s.seed;
      refs_.push_back(genome::generate_reference(gspec));
    }
    for (std::size_t c = 0; c < refs_.size(); ++c) {
      genome::SnpPlantSpec pspec;
      pspec.seed = specs[c].seed + 1;
      const genome::Diploid individual(refs_[c],
                                       plant_snps(refs_[c], pspec));
      reads::ReadSimSpec rspec;
      rspec.depth = 6.0;
      rspec.seed = specs[c].seed + 2;
      const fs::path align = dir_ / (refs_[c].name() + ".soap");
      reads::write_alignment_file(align,
                                  reads::simulate_reads(individual, rspec));
      ChromosomeJob job;
      job.name = refs_[c].name();
      job.alignment_file = align;
      job.reference = &refs_[c];
      jobs_.push_back(job);
    }
  }
  void TearDown() override { fs::remove_all(dir_); }

  RunFingerprint run(EngineKind kind, const PipelineVariant& v) {
    GenomeRunConfig config;
    config.chromosomes = jobs_;
    config.output_dir =
        dir_ / (std::string(engine_name(kind)) + "_" + v.label);
    config.window_size = 2'048;
    config.streams = v.streams;
    config.pipeline_depth = v.pipeline_depth;
    config.host_threads = v.host_threads;
    config.batch_bytes = v.batch_bytes;

    device::Device dev;  // fresh per run: counters comparable across runs
    const GenomeReport report = run_genome(
        config, kind, kind == EngineKind::kGsnp ? &dev : nullptr);

    RunFingerprint fp;
    for (const fs::path& out : report.output_files) {
      fp.output_bytes.push_back(read_file_bytes(out));
      std::string seq_name;
      const auto rows = read_snp_output(out, seq_name);
      const fs::path vcf = out.string() + ".vcf";
      write_vcf_file(vcf, seq_name, rows.size(), rows);
      fp.vcf_bytes.push_back(read_file_bytes(vcf));
    }
    const RunManifest manifest = read_run_manifest(report.manifest_file);
    // No run in this battery injects faults, so every chromosome must come
    // back clean on the requested engine.  A silent CPU fallback would fake
    // determinism (the degraded path produces the same bytes by design)
    // while leaving the path under test uncovered.
    for (const auto& e : manifest.chromosomes) {
      EXPECT_EQ(e.status, "done") << v.label << ": " << e.name << " failed";
      EXPECT_FALSE(e.degraded)
          << v.label << ": " << e.name << " silently degraded to "
          << e.engine << " (" << e.error << ")";
    }
    fp.manifest_digest = manifest_digest(manifest);
    fp.counters = dev.counters();
    return fp;
  }

  void expect_identical(const RunFingerprint& a, const RunFingerprint& b,
                        EngineKind kind, const char* label) {
    ASSERT_EQ(a.output_bytes.size(), b.output_bytes.size()) << label;
    for (std::size_t c = 0; c < a.output_bytes.size(); ++c) {
      EXPECT_EQ(a.output_bytes[c] == b.output_bytes[c], true)
          << engine_name(kind) << " " << label << ": chromosome " << c
          << " raw output differs from serial";
      EXPECT_EQ(a.vcf_bytes[c] == b.vcf_bytes[c], true)
          << engine_name(kind) << " " << label << ": chromosome " << c
          << " VCF differs from serial";
    }
    EXPECT_EQ(a.manifest_digest, b.manifest_digest)
        << engine_name(kind) << " " << label << ": manifest digest differs";
    if (kind == EngineKind::kGsnp) {
      // Identical op multiset + commutative u64 adds: the final device
      // counters must match the serial run exactly, whatever the interleave.
      // Field-by-field so a mismatch names the counter that drifted.
      const device::DeviceCounters& ca = a.counters;
      const device::DeviceCounters& cb = b.counters;
#define GSNP_EXPECT_COUNTER(field)                                         \
  EXPECT_EQ(ca.field, cb.field)                                            \
      << label << ": device counter '" #field "' differs from serial"
      GSNP_EXPECT_COUNTER(instructions);
      GSNP_EXPECT_COUNTER(global_loads_coalesced);
      GSNP_EXPECT_COUNTER(global_loads_random);
      GSNP_EXPECT_COUNTER(global_stores_coalesced);
      GSNP_EXPECT_COUNTER(global_stores_random);
      GSNP_EXPECT_COUNTER(global_load_bytes_coalesced);
      GSNP_EXPECT_COUNTER(global_load_bytes_random);
      GSNP_EXPECT_COUNTER(global_store_bytes_coalesced);
      GSNP_EXPECT_COUNTER(global_store_bytes_random);
      GSNP_EXPECT_COUNTER(shared_loads);
      GSNP_EXPECT_COUNTER(shared_stores);
      GSNP_EXPECT_COUNTER(shared_bytes);
      GSNP_EXPECT_COUNTER(h2d_bytes);
      GSNP_EXPECT_COUNTER(d2h_bytes);
      GSNP_EXPECT_COUNTER(kernel_launches);
#undef GSNP_EXPECT_COUNTER
    }
  }

  /// The battery itself: serial twice (reproducibility with itself — seeded
  /// input, deterministic code), then every overlapped variant vs serial.
  void run_battery(EngineKind kind) {
    static constexpr PipelineVariant kVariants[] = {
        {"s2_p1", 2, 2, 1},  // overlapped, single host worker
        {"s2_p2", 2, 2, 2},  // overlapped, default host pool
        {"s4_p8", 4, 3, 8},  // wide: 4 streams, depth 3, oversubscribed pool
    };
    const RunFingerprint serial = run(kind, {"serial", 1, 2, 2});
    expect_identical(run(kind, {"serial2", 1, 2, 2}), serial, kind,
                     "serial rerun");
    for (const PipelineVariant& v : kVariants)
      expect_identical(run(kind, v), serial, kind, v.label);
  }

  /// Batched-vs-fixed identity, minus device counters: batching re-shapes
  /// the device op stream (per-batch uploads, per-batch scratch), so the
  /// counters legitimately differ from the fixed-window run — the contract
  /// is on the *artifacts*: raw output, VCF and manifest digest.
  void expect_same_artifacts(const RunFingerprint& a, const RunFingerprint& b,
                             EngineKind kind, const char* label) {
    ASSERT_EQ(a.output_bytes.size(), b.output_bytes.size()) << label;
    for (std::size_t c = 0; c < a.output_bytes.size(); ++c) {
      EXPECT_EQ(a.output_bytes[c] == b.output_bytes[c], true)
          << engine_name(kind) << " " << label << ": chromosome " << c
          << " raw output differs from fixed-window";
      EXPECT_EQ(a.vcf_bytes[c] == b.vcf_bytes[c], true)
          << engine_name(kind) << " " << label << ": chromosome " << c
          << " VCF differs from fixed-window";
    }
    EXPECT_EQ(a.manifest_digest, b.manifest_digest)
        << engine_name(kind) << " " << label << ": manifest digest differs";
  }

  /// The batched battery: a fixed-window serial reference, then a batched
  /// serial run (artifact-identical to fixed), then overlapped batched
  /// variants (fully identical to batched serial, device counters included —
  /// the overlapped paths execute the same per-batch op multiset).
  void run_batched_battery(EngineKind kind) {
    // ~1/17th of a 2,048-site window's likelihood footprint: every window in
    // the 6x dataset splits into multiple batches.
    constexpr u64 kBudget = 256 * 1024;
    static constexpr PipelineVariant kBatchedVariants[] = {
        {"b_s2_p2", 2, 2, 2, kBudget},
        {"b_s4_p8", 4, 3, 8, kBudget},
    };
    const RunFingerprint fixed = run(kind, {"b_fixed", 1, 2, 2, 0});
    const RunFingerprint batched = run(kind, {"b_serial", 1, 2, 2, kBudget});
    expect_same_artifacts(batched, fixed, kind, "batched serial");
    for (const PipelineVariant& v : kBatchedVariants)
      expect_identical(run(kind, v), batched, kind, v.label);
  }

  fs::path dir_;
  std::vector<genome::Reference> refs_;
  std::vector<ChromosomeJob> jobs_;
};

TEST_F(DeterminismBattery, SoapsnpOverlappedMatchesSerial) {
  run_battery(EngineKind::kSoapsnp);
}

TEST_F(DeterminismBattery, GsnpCpuOverlappedMatchesSerial) {
  run_battery(EngineKind::kGsnpCpu);
}

TEST_F(DeterminismBattery, GsnpOverlappedMatchesSerial) {
  run_battery(EngineKind::kGsnp);
}

TEST_F(DeterminismBattery, GsnpSimdOverlappedMatchesSerial) {
  run_battery(EngineKind::kGsnpSimd);
}

// ---- depth-aware batching (byte-capacity budget) ---------------------------

TEST_F(DeterminismBattery, SoapsnpBatchedMatchesFixedWindow) {
  run_batched_battery(EngineKind::kSoapsnp);
}

TEST_F(DeterminismBattery, GsnpCpuBatchedMatchesFixedWindow) {
  run_batched_battery(EngineKind::kGsnpCpu);
}

TEST_F(DeterminismBattery, GsnpBatchedMatchesFixedWindow) {
  run_batched_battery(EngineKind::kGsnp);
}

TEST_F(DeterminismBattery, GsnpSimdBatchedMatchesFixedWindow) {
  run_batched_battery(EngineKind::kGsnpSimd);
}

/// The batched battery over a skewed-depth dataset: seeded 50-200x hotspot
/// islands on a 6x baseline, so batch sizes genuinely float (hundreds of
/// shallow sites per batch outside the islands, a handful of deep ones
/// inside) while windows, streams and budgets interact.
class HotspotDeterminism : public DeterminismBattery {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_hotspot_determinism_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    genome::GenomeSpec gspec;
    gspec.name = "chrHot";
    gspec.length = 40'000;
    gspec.seed = 120;
    refs_.push_back(genome::generate_reference(gspec));
    const genome::Reference& ref = refs_.back();

    genome::SnpPlantSpec pspec;
    pspec.seed = 121;
    const genome::Diploid individual(ref, plant_snps(ref, pspec));

    genome::HotspotSpec hspec;
    hspec.islands = 3;
    hspec.island_length = 1'500;
    // 25-75x over the 6x baseline: deep enough that every island window
    // splits into many batches, shallow enough that per-site pileups stay
    // under the device's 1,024-thread block limit — deeper islands make the
    // bitonic sort pass unlaunchable and the run would silently degrade to
    // the CPU engine, taking the device path out of the battery.
    hspec.multiplier_lo = 25.0;
    hspec.multiplier_hi = 75.0;
    hspec.seed = 122;
    reads::ReadSimSpec rspec;
    rspec.depth = 6.0;
    rspec.seed = 123;
    rspec.hotspots = genome::place_hotspot_islands(ref.size(), hspec);

    const fs::path align = dir_ / "chrHot.soap";
    reads::write_alignment_file(align,
                                reads::simulate_reads(individual, rspec));
    ChromosomeJob job;
    job.name = ref.name();
    job.alignment_file = align;
    job.reference = &ref;
    jobs_.push_back(job);
  }
};

TEST_F(HotspotDeterminism, GsnpBatchedMatchesFixedWindow) {
  run_batched_battery(EngineKind::kGsnp);
}

TEST_F(HotspotDeterminism, GsnpCpuBatchedMatchesFixedWindow) {
  run_batched_battery(EngineKind::kGsnpCpu);
}

/// Restores environment-driven SIMD dispatch even when an ASSERT bails out
/// of a test mid-way.
struct ForcedLevel {
  explicit ForcedLevel(simd::Level level) { simd::force_level(level); }
  ~ForcedLevel() { simd::force_level(std::nullopt); }
};

TEST_F(DeterminismBattery, BackendMatrixIsByteIdentical) {
  // The registry's bit-exactness contract, §IV-G extended to dispatch
  // levels: gsnp-simd pinned to scalar, SSE2 and AVX2 must produce output
  // and VCF bytes identical to gsnp-cpu.  (Manifest digests embed the
  // engine id, so cross-backend identity is asserted on the bytes.)
  const PipelineVariant v = {"matrix", 1, 2, 2};
  const RunFingerprint reference = run(EngineKind::kGsnpCpu, v);

  if (!simd::level_supported(simd::Level::kAvx2))
    std::cerr << "[ WARNING  ] host lacks AVX2 — backend matrix only covers "
              << "the levels this CPU can execute\n";

  for (const simd::Level level : simd::supported_levels()) {
    const ForcedLevel forced(level);
    const RunFingerprint fp = run(EngineKind::kGsnpSimd, v);
    ASSERT_EQ(fp.output_bytes.size(), reference.output_bytes.size());
    for (std::size_t c = 0; c < fp.output_bytes.size(); ++c) {
      EXPECT_EQ(fp.output_bytes[c] == reference.output_bytes[c], true)
          << "gsnp-simd@" << simd::level_name(level) << ": chromosome " << c
          << " raw output differs from gsnp-cpu";
      EXPECT_EQ(fp.vcf_bytes[c] == reference.vcf_bytes[c], true)
          << "gsnp-simd@" << simd::level_name(level) << ": chromosome " << c
          << " VCF differs from gsnp-cpu";
    }
  }
}

TEST_F(DeterminismBattery, EnginesAgreeUnderOverlap) {
  // The §IV-G cross-engine guarantee must survive overlap: an overlapped
  // GSNP run and an overlapped SOAPsnp run still call identical rows.
  const PipelineVariant v = {"cross", 2, 2, 2};
  GenomeRunConfig config;
  config.chromosomes = jobs_;
  config.window_size = 2'048;
  config.streams = v.streams;
  config.pipeline_depth = v.pipeline_depth;
  config.host_threads = v.host_threads;

  device::Device dev;
  config.output_dir = dir_ / "cross_gsnp";
  const auto gsnp = run_genome(config, EngineKind::kGsnp, &dev);
  config.output_dir = dir_ / "cross_soapsnp";
  const auto soapsnp = run_genome(config, EngineKind::kSoapsnp);
  ASSERT_EQ(gsnp.output_files.size(), soapsnp.output_files.size());
  for (std::size_t c = 0; c < gsnp.output_files.size(); ++c) {
    const auto report =
        compare_output_files(gsnp.output_files[c], soapsnp.output_files[c]);
    EXPECT_TRUE(report.identical) << jobs_[c].name << ": " << report.detail;
  }
}

// ---- golden end-to-end corpus -----------------------------------------------

/// Golden file format: one "key<space>sha256-hex" per line, sorted by key.
std::map<std::string, std::string> read_golden(const fs::path& path) {
  std::map<std::string, std::string> golden;
  std::ifstream in(path);
  std::string key, hash;
  while (in >> key >> hash) golden[key] = hash;
  return golden;
}

TEST_F(DeterminismBattery, GoldenEndToEndHashes) {
  const fs::path golden_path =
      fs::path(GSNP_TEST_CORPUS_DIR) / "golden" / "e2e.sha256";

  // Hash every backend's serial raw outputs and VCFs — the same artifacts
  // the battery above proves the overlapped paths reproduce, so pinning
  // serial pins everything.  The registry's bit-exactness contract shows up
  // directly in the golden file: the .out/.vcf hashes of gsnp, gsnp_cpu and
  // gsnp_simd are the same hex strings (only the manifests differ, because
  // they embed the engine id).
  std::map<std::string, std::string> actual;
  for (const EngineKind kind :
       {EngineKind::kGsnp, EngineKind::kSoapsnp, EngineKind::kGsnpCpu,
        EngineKind::kGsnpSimd}) {
    const RunFingerprint fp = run(kind, {"golden", 1, 2, 2});
    for (std::size_t c = 0; c < fp.output_bytes.size(); ++c) {
      const std::string base =
          std::string(engine_name(kind)) + "/" + jobs_[c].name;
      actual[base + ".out"] = sha256_hex(fp.output_bytes[c]);
      actual[base + ".vcf"] = sha256_hex(fp.vcf_bytes[c]);
    }
    actual[std::string(engine_name(kind)) + "/manifest"] =
        fp.manifest_digest;
  }

  if (std::getenv("GSNP_UPDATE_GOLDEN") != nullptr) {
    fs::create_directories(golden_path.parent_path());
    std::ofstream out(golden_path, std::ios::trunc);
    for (const auto& [key, hash] : actual) out << key << ' ' << hash << '\n';
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  const auto golden = read_golden(golden_path);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << golden_path
      << " — run once with GSNP_UPDATE_GOLDEN=1 to generate it";
  for (const auto& [key, hash] : golden) {
    const auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << "golden key '" << key << "' not produced";
    EXPECT_EQ(it->second, hash)
        << "end-to-end output drift for '" << key
        << "' (intentional? regenerate with GSNP_UPDATE_GOLDEN=1)";
  }
  EXPECT_EQ(actual.size(), golden.size())
      << "run produced keys the golden file does not pin";
}

}  // namespace
}  // namespace gsnp::core
