// Unit tests for src/genome: reference/FASTA, synthetic generation, SNP
// planting, dbSNP prior tables, karyotype scaling.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "src/common/error.hpp"
#include "src/genome/dbsnp.hpp"
#include "src/genome/karyotype.hpp"
#include "src/genome/reference.hpp"
#include "src/genome/synthetic.hpp"

namespace gsnp::genome {
namespace {

namespace fs = std::filesystem;

Reference make_ref(std::string name, std::string_view seq) {
  std::vector<u8> bases;
  for (const char c : seq) bases.push_back(base_from_char(c));
  return Reference(std::move(name), std::move(bases));
}

// ---- FASTA -----------------------------------------------------------------

TEST(Fasta, RoundTripSingleSequence) {
  const Reference ref = make_ref("chrT", "ACGTACGTTTGCA");
  std::ostringstream out;
  write_fasta(out, ref, 5);
  std::istringstream in(out.str());
  const auto refs = read_fasta(in);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].name(), "chrT");
  EXPECT_EQ(refs[0].bases(), ref.bases());
}

TEST(Fasta, RoundTripMultipleSequences) {
  std::ostringstream out;
  write_fasta(out, make_ref("a", "ACGT"), 70);
  write_fasta(out, make_ref("b", "TTTT"), 70);
  std::istringstream in(out.str());
  const auto refs = read_fasta(in);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].name(), "a");
  EXPECT_EQ(refs[1].name(), "b");
  EXPECT_EQ(refs[1].substring(0, 4), "TTTT");
}

TEST(Fasta, NBasesPreserved) {
  const Reference ref = make_ref("n", "ACNNT");
  std::ostringstream out;
  write_fasta(out, ref);
  std::istringstream in(out.str());
  const auto refs = read_fasta(in);
  EXPECT_EQ(refs[0].base(2), kInvalidBase);
  EXPECT_EQ(refs[0].substring(0, 5), "ACNNT");
}

TEST(Fasta, HeaderNameStopsAtSpace) {
  std::istringstream in(">chr1 homo sapiens\nACGT\n");
  const auto refs = read_fasta(in);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].name(), "chr1");
}

TEST(Fasta, DataBeforeHeaderThrows) {
  std::istringstream in("ACGT\n>late\nACGT\n");
  EXPECT_THROW(read_fasta(in), Error);
}

TEST(Fasta, AmbiguityCodesBecomeN) {
  std::istringstream in(">x\nARYT\n");
  const auto refs = read_fasta(in);
  EXPECT_EQ(refs[0].substring(0, 4), "ANNT");
}

TEST(Fasta, FileRoundTrip) {
  const fs::path path = fs::temp_directory_path() / "gsnp_test.fasta";
  const Reference ref = make_ref("chrF", "ACGTACGTACGTACGT");
  write_fasta_file(path, {ref}, 7);
  const auto refs = read_fasta_file(path);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].bases(), ref.bases());
  fs::remove(path);
}

TEST(Reference, SubstringBoundsChecked) {
  const Reference ref = make_ref("x", "ACGT");
  EXPECT_THROW(ref.substring(2, 3), Error);
}

// ---- synthetic generation -----------------------------------------------------

TEST(Synthetic, GeneratesRequestedLength) {
  GenomeSpec spec;
  spec.length = 12345;
  EXPECT_EQ(generate_reference(spec).size(), 12345u);
}

TEST(Synthetic, GcContentApproximatelyHonored) {
  GenomeSpec spec;
  spec.length = 200000;
  spec.gc_content = 0.6;
  const Reference ref = generate_reference(spec);
  u64 gc = 0;
  for (u64 i = 0; i < ref.size(); ++i) {
    const char c = char_from_base(ref.base(i));
    gc += (c == 'G' || c == 'C');
  }
  EXPECT_NEAR(static_cast<double>(gc) / ref.size(), 0.6, 0.01);
}

TEST(Synthetic, NGapRateHonored) {
  GenomeSpec spec;
  spec.length = 100000;
  spec.n_gap_rate = 0.05;
  const Reference ref = generate_reference(spec);
  u64 n = 0;
  for (u64 i = 0; i < ref.size(); ++i) n += (ref.base(i) == kInvalidBase);
  EXPECT_NEAR(static_cast<double>(n) / ref.size(), 0.05, 0.005);
}

TEST(Synthetic, DeterministicBySeed) {
  GenomeSpec spec;
  spec.length = 1000;
  const Reference a = generate_reference(spec);
  const Reference b = generate_reference(spec);
  EXPECT_EQ(a.bases(), b.bases());
  spec.seed = 99;
  EXPECT_NE(generate_reference(spec).bases(), a.bases());
}

// ---- SNP planting ----------------------------------------------------------------

class PlantSnps : public ::testing::Test {
 protected:
  void SetUp() override {
    GenomeSpec gspec;
    gspec.length = 300000;
    ref_ = generate_reference(gspec);
    snps_ = plant_snps(ref_, spec_);
  }
  Reference ref_;
  SnpPlantSpec spec_;
  std::vector<PlantedSnp> snps_;
};

TEST_F(PlantSnps, RateApproximatelyHonored) {
  EXPECT_NEAR(static_cast<double>(snps_.size()) / ref_.size(), spec_.snp_rate,
              spec_.snp_rate * 0.3);
}

TEST_F(PlantSnps, SortedByPosition) {
  for (std::size_t i = 1; i < snps_.size(); ++i)
    EXPECT_LT(snps_[i - 1].pos, snps_[i].pos);
}

TEST_F(PlantSnps, GenotypesDifferFromReference) {
  for (const auto& snp : snps_) {
    EXPECT_EQ(snp.ref_base, ref_.base(snp.pos));
    EXPECT_FALSE(snp.genotype.allele1 == snp.ref_base &&
                 snp.genotype.allele2 == snp.ref_base);
    EXPECT_LE(snp.genotype.allele1, snp.genotype.allele2);
  }
}

TEST_F(PlantSnps, HetFractionApproximatelyHonored) {
  u64 het = 0;
  for (const auto& snp : snps_) het += !snp.genotype.homozygous();
  EXPECT_NEAR(static_cast<double>(het) / snps_.size(), spec_.het_fraction,
              0.12);
}

TEST_F(PlantSnps, HetSitesKeepReferenceAllele) {
  for (const auto& snp : snps_) {
    if (snp.genotype.homozygous()) continue;
    EXPECT_TRUE(snp.genotype.allele1 == snp.ref_base ||
                snp.genotype.allele2 == snp.ref_base);
  }
}

TEST(PlantSnpsEdge, NeverOnNGaps) {
  GenomeSpec gspec;
  gspec.length = 50000;
  gspec.n_gap_rate = 0.3;
  const Reference ref = generate_reference(gspec);
  SnpPlantSpec pspec;
  pspec.snp_rate = 0.05;
  for (const auto& snp : plant_snps(ref, pspec))
    EXPECT_NE(ref.base(snp.pos), kInvalidBase);
}

TEST(AltAllele, TransitionBias) {
  Rng rng(5);
  int transitions = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    transitions += is_transition(0, draw_alt_allele(0, 2.0, rng));
  // Expect ti/(ti+tv) = 2/4 = 0.5 with bias 2.0.
  EXPECT_NEAR(static_cast<double>(transitions) / n, 0.5, 0.02);
}

TEST(AltAllele, NeverReturnsReference) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i)
    for (u8 r = 0; r < kNumBases; ++r)
      EXPECT_NE(draw_alt_allele(r, 2.0, rng), r);
}

// ---- Diploid ------------------------------------------------------------------------

TEST(Diploid, GenotypeQueries) {
  const Reference ref = make_ref("d", "AAAAAAAA");
  std::vector<PlantedSnp> snps(1);
  snps[0].pos = 3;
  snps[0].ref_base = 0;
  snps[0].genotype = {0, 2};  // A/G het
  const Diploid ind(ref, snps);

  EXPECT_EQ(ind.genotype_at(0), (Genotype{0, 0}));
  EXPECT_EQ(ind.genotype_at(3), (Genotype{0, 2}));
  EXPECT_EQ(ind.haplotype_base(3, 0), 0);
  EXPECT_EQ(ind.haplotype_base(3, 1), 2);
  EXPECT_EQ(ind.haplotype_base(5, 0), 0);
  EXPECT_NE(ind.find(3), nullptr);
  EXPECT_EQ(ind.find(4), nullptr);
}

TEST(Diploid, RejectsUnsortedSnps) {
  const Reference ref = make_ref("d", "AAAA");
  std::vector<PlantedSnp> snps(2);
  snps[0].pos = 3;
  snps[1].pos = 1;
  EXPECT_THROW(Diploid(ref, snps), Error);
}

// ---- dbSNP ---------------------------------------------------------------------------

TEST(DbSnp, RoundTripTextFormat) {
  std::vector<KnownSnpEntry> entries(2);
  entries[0].pos = 10;
  entries[0].freq = {0.7, 0.3, 0.0, 0.0};
  entries[0].validated = true;
  entries[1].pos = 99;
  entries[1].freq = {0.0, 0.0, 0.5, 0.5};
  const DbSnpTable table("chrD", entries);

  std::ostringstream out;
  write_dbsnp(out, table);
  std::istringstream in(out.str());
  const DbSnpTable parsed = read_dbsnp(in);
  EXPECT_EQ(parsed.seq_name(), "chrD");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.entries()[0].pos, 10u);
  EXPECT_TRUE(parsed.entries()[0].validated);
  EXPECT_NEAR(parsed.entries()[1].freq[2], 0.5, 1e-9);
}

TEST(DbSnp, FindByPosition) {
  std::vector<KnownSnpEntry> entries(3);
  entries[0].pos = 5;
  entries[1].pos = 10;
  entries[2].pos = 20;
  const DbSnpTable table("c", entries);
  EXPECT_NE(table.find(10), nullptr);
  EXPECT_EQ(table.find(10)->pos, 10u);
  EXPECT_EQ(table.find(11), nullptr);
  EXPECT_EQ(table.find(0), nullptr);
}

TEST(DbSnp, RejectsUnsortedEntries) {
  std::vector<KnownSnpEntry> entries(2);
  entries[0].pos = 10;
  entries[1].pos = 5;
  EXPECT_THROW(DbSnpTable("c", entries), Error);
}

TEST(DbSnp, MakeCoversKnownPlantedSnps) {
  GenomeSpec gspec;
  gspec.length = 100000;
  const Reference ref = generate_reference(gspec);
  SnpPlantSpec pspec;
  pspec.snp_rate = 0.005;
  const auto snps = plant_snps(ref, pspec);
  const DbSnpTable table = make_dbsnp(ref, snps, 0.001, 3);

  for (const auto& snp : snps) {
    if (snp.in_dbsnp) {
      const KnownSnpEntry* e = table.find(snp.pos);
      ASSERT_NE(e, nullptr);
      // The alternate allele must carry some population frequency.
      const u8 alt = snp.genotype.allele1 == snp.ref_base
                         ? snp.genotype.allele2
                         : snp.genotype.allele1;
      EXPECT_GT(e->freq[alt], 0.0);
    }
  }
}

TEST(DbSnp, MakeAddsDecoys) {
  GenomeSpec gspec;
  gspec.length = 100000;
  const Reference ref = generate_reference(gspec);
  const std::vector<PlantedSnp> no_snps;
  const DbSnpTable table = make_dbsnp(ref, no_snps, 0.01, 4);
  EXPECT_GT(table.size(), 500u);
  EXPECT_LT(table.size(), 1100u);
}

TEST(DbSnp, FrequenciesNormalized) {
  GenomeSpec gspec;
  gspec.length = 50000;
  const Reference ref = generate_reference(gspec);
  SnpPlantSpec pspec;
  const auto snps = plant_snps(ref, pspec);
  const DbSnpTable table = make_dbsnp(ref, snps, 0.005, 5);
  for (const auto& e : table.entries()) {
    double total = 0.0;
    for (const double f : e.freq) total += f;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

// ---- karyotype -----------------------------------------------------------------------

TEST(Karyotype, Has24Chromosomes) {
  EXPECT_EQ(kHumanKaryotype.size(), 24u);
  EXPECT_EQ(kHumanKaryotype[0].name, "chr1");
  EXPECT_EQ(kHumanKaryotype[23].name, "chrY");
}

TEST(Karyotype, Chr1IsLargestAndChr21Smallest) {
  // Matches paper Table II: chr1 largest, chr21 the smallest sequence used.
  for (const auto& info : kHumanKaryotype)
    EXPECT_LE(info.mbp, kHumanKaryotype[0].mbp);
  EXPECT_DOUBLE_EQ(kHumanKaryotype[20].mbp, 46.9);
}

TEST(Karyotype, ScalingProportional) {
  const u64 chr1 = scaled_sites(kHumanKaryotype[0], 100000);
  const u64 chr21 = scaled_sites(kHumanKaryotype[20], 100000);
  EXPECT_EQ(chr1, 100000u);
  EXPECT_NEAR(static_cast<double>(chr21) / chr1, 46.9 / 247.2, 1e-3);
}

// ---- hotspot islands -------------------------------------------------------

TEST(Hotspot, IslandsSortedDisjointInBoundsAndSeeded) {
  HotspotSpec spec;
  spec.islands = 6;
  spec.island_length = 3'000;
  spec.seed = 77;
  const auto islands = place_hotspot_islands(500'000, spec);
  ASSERT_EQ(islands.size(), 6u);
  for (std::size_t i = 0; i < islands.size(); ++i) {
    EXPECT_EQ(islands[i].length, spec.island_length);
    EXPECT_LE(islands[i].start + islands[i].length, 500'000u);
    EXPECT_GE(islands[i].depth_multiplier, spec.multiplier_lo);
    EXPECT_LE(islands[i].depth_multiplier, spec.multiplier_hi);
    if (i > 0)  // sorted and pairwise disjoint
      EXPECT_LE(islands[i - 1].start + islands[i - 1].length,
                islands[i].start);
  }
  // Deterministic in the seed; a different seed moves the islands.
  const auto again = place_hotspot_islands(500'000, spec);
  ASSERT_EQ(again.size(), islands.size());
  for (std::size_t i = 0; i < islands.size(); ++i) {
    EXPECT_EQ(again[i].start, islands[i].start);
    EXPECT_DOUBLE_EQ(again[i].depth_multiplier, islands[i].depth_multiplier);
  }
  spec.seed = 78;
  const auto moved = place_hotspot_islands(500'000, spec);
  bool any_differs = false;
  for (std::size_t i = 0; i < moved.size(); ++i)
    any_differs = any_differs || moved[i].start != islands[i].start;
  EXPECT_TRUE(any_differs);
}

TEST(Hotspot, MultipliersSpanTheConfiguredRange) {
  HotspotSpec spec;
  spec.islands = 32;
  spec.island_length = 1'000;
  spec.multiplier_lo = 50.0;
  spec.multiplier_hi = 200.0;
  const auto islands = place_hotspot_islands(2'000'000, spec);
  double lo = spec.multiplier_hi, hi = spec.multiplier_lo;
  for (const auto& h : islands) {
    lo = std::min(lo, h.depth_multiplier);
    hi = std::max(hi, h.depth_multiplier);
  }
  // 32 uniform draws: the empirical range covers most of [50, 200].
  EXPECT_LT(lo, 90.0);
  EXPECT_GT(hi, 160.0);
}

TEST(Hotspot, RejectsImpossibleSpecs) {
  HotspotSpec spec;
  spec.islands = 4;
  spec.island_length = 3'000;
  EXPECT_THROW(place_hotspot_islands(2'000, spec), Error);  // island > genome
  spec.island_length = 600;
  EXPECT_THROW(place_hotspot_islands(2'000, spec), Error);  // 4*600 > 2000
  spec.multiplier_lo = 0.5;
  spec.island_length = 100;
  EXPECT_THROW(place_hotspot_islands(10'000, spec), Error);  // mult < 1
}

}  // namespace
}  // namespace gsnp::genome
