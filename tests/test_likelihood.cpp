// Tests for the likelihood calculation: the dense/sparse CPU equivalence
// (the §IV-G consistency property at the algorithm level) and the device
// kernel variants.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/rng.hpp"
#include "src/core/base_occ.hpp"
#include "src/core/base_word.hpp"
#include "src/core/kernels.hpp"
#include "src/core/likelihood.hpp"
#include "src/core/new_pmatrix.hpp"
#include "src/core/pmatrix.hpp"
#include "src/core/posterior.hpp"
#include "src/core/simd.hpp"

namespace gsnp::core {
namespace {

/// Shared fixture: a recalibrated p_matrix / new_p_matrix pair plus random
/// per-site observation sets.
class Likelihood : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PMatrixCounter counter;
    Rng rng(123);
    for (int i = 0; i < 50000; ++i) {
      const int allele = static_cast<int>(rng.uniform(4));
      const int obs = rng.bernoulli(0.97)
                          ? allele
                          : static_cast<int>(rng.uniform(4));
      counter.add(static_cast<int>(rng.uniform(kQualityLevels)),
                  static_cast<int>(rng.uniform(100)), allele, obs);
    }
    pm_ = new PMatrix(finalize_p_matrix(counter));
    npm_ = new NewPMatrix(*pm_);
  }
  static void TearDownTestSuite() {
    delete pm_;
    delete npm_;
    pm_ = nullptr;
    npm_ = nullptr;
  }

  static std::vector<AlignedBase> random_site(u64 seed, int n,
                                              int coord_range = 100) {
    Rng rng(seed);
    std::vector<AlignedBase> obs(n);
    for (auto& ab : obs) {
      ab.base = static_cast<u8>(rng.uniform(kNumBases));
      ab.quality = static_cast<u8>(rng.uniform(kQualityLevels));
      ab.coord = static_cast<u16>(rng.uniform(coord_range));
      ab.strand = static_cast<Strand>(rng.uniform(2));
    }
    return obs;
  }

  static TypeLikely dense_of(const std::vector<AlignedBase>& obs) {
    BaseOccWindow window(1);
    for (const auto& ab : obs) window.add(0, ab);
    return likelihood_dense_site(window.site(0), *pm_);
  }

  static TypeLikely sparse_of(const std::vector<AlignedBase>& obs) {
    std::vector<u32> words;
    for (const auto& ab : obs) words.push_back(base_word_pack(ab));
    std::sort(words.begin(), words.end());
    return likelihood_sparse_site(words, *npm_);
  }

  static PMatrix* pm_;
  static NewPMatrix* npm_;
};

PMatrix* Likelihood::pm_ = nullptr;
NewPMatrix* Likelihood::npm_ = nullptr;

TEST_F(Likelihood, EmptySiteGivesZeroLogLikelihoods) {
  const TypeLikely dense = dense_of({});
  const TypeLikely sparse = sparse_of({});
  for (int g = 0; g < kNumGenotypes; ++g) {
    EXPECT_EQ(dense[g], 0.0);
    EXPECT_EQ(sparse[g], 0.0);
  }
}

TEST_F(Likelihood, DenseAndSparseBitIdentical) {
  // The central consistency property: Algorithm 1 (dense, runtime log10) and
  // Algorithm 4 (sorted sparse, precomputed table) produce IDENTICAL doubles.
  for (u64 seed = 1; seed <= 30; ++seed) {
    const auto obs = random_site(seed, static_cast<int>(1 + seed % 40));
    const TypeLikely dense = dense_of(obs);
    const TypeLikely sparse = sparse_of(obs);
    for (int g = 0; g < kNumGenotypes; ++g)
      ASSERT_EQ(dense[g], sparse[g]) << "seed " << seed << " genotype " << g;
  }
}

TEST_F(Likelihood, DuplicateObservationsArePenalized) {
  // Two identical observations: the second contributes with a decayed
  // quality (dep_count = 2), so the total is not simply double the single
  // observation's contribution.
  AlignedBase ab;
  ab.base = 1;
  ab.quality = 40;
  ab.coord = 7;
  ab.strand = Strand::kForward;
  const TypeLikely one = sparse_of({ab});
  const TypeLikely two = sparse_of({ab, ab});
  for (int g = 0; g < kNumGenotypes; ++g)
    EXPECT_NE(two[g], 2.0 * one[g]) << "genotype " << g;
}

TEST_F(Likelihood, IndependentObservationsAdd) {
  // Observations at different coordinates are independent: log-likelihoods
  // sum exactly.
  AlignedBase a, b;
  a.base = b.base = 2;
  a.quality = b.quality = 35;
  a.coord = 3;
  b.coord = 90;
  a.strand = b.strand = Strand::kForward;
  const TypeLikely la = sparse_of({a});
  const TypeLikely lb = sparse_of({b});
  const TypeLikely lab = sparse_of({a, b});
  for (int g = 0; g < kNumGenotypes; ++g)
    EXPECT_DOUBLE_EQ(lab[g], la[g] + lb[g]);
}

TEST_F(Likelihood, MatchingHomozygoteIsMostLikely) {
  // 10 clean high-quality 'G' reads: genotype GG must top the list.
  std::vector<AlignedBase> obs;
  for (int i = 0; i < 10; ++i) {
    AlignedBase ab;
    ab.base = 2;
    ab.quality = 45;
    ab.coord = static_cast<u16>(i * 7);
    ab.strand = static_cast<Strand>(i & 1);
    obs.push_back(ab);
  }
  const TypeLikely tl = sparse_of(obs);
  const int gg = genotype_rank(2, 2);
  for (int g = 0; g < kNumGenotypes; ++g)
    if (g != gg) EXPECT_GT(tl[gg], tl[g]);
}

TEST_F(Likelihood, HetBeatsBothHomsOnBalancedEvidence) {
  std::vector<AlignedBase> obs;
  for (int i = 0; i < 12; ++i) {
    AlignedBase ab;
    ab.base = (i % 2 == 0) ? 0 : 2;  // alternating A and G
    ab.quality = 40;
    ab.coord = static_cast<u16>(i * 5);
    ab.strand = static_cast<Strand>(i & 1);
    obs.push_back(ab);
  }
  const TypeLikely tl = sparse_of(obs);
  const int ag = genotype_rank(0, 2);
  EXPECT_GT(tl[ag], tl[genotype_rank(0, 0)]);
  EXPECT_GT(tl[ag], tl[genotype_rank(2, 2)]);
}

TEST_F(Likelihood, ZeroProbabilityCellStaysFiniteAndConsistent) {
  // Regression: the dense path used to evaluate log10(0.5*p1 + 0.5*p2)
  // unguarded, so a zero p_matrix cell (possible in loaded or hand-built
  // matrices; finalize_p_matrix's pseudocount keeps real calibrations
  // positive) produced -inf in the dense likelihood while the sparse path's
  // NewPMatrix construction hit the same -inf at table-build time.  Both now
  // clamp through likely_log10, so the result is finite AND the dense/sparse
  // §IV-G equivalence survives a zero cell.
  PMatrix pm;  // all-zero table
  // Give exactly one (q, coord) cell column real mass for observed base 1,
  // true alleles 0 and 1; every other allele keeps probability zero.
  pm.at(40, 7, 0, 1) = 0.25;
  pm.at(40, 7, 1, 1) = 0.9;
  const NewPMatrix npm(pm);
  for (int combo = 0; combo < kNumGenotypes; ++combo)
    EXPECT_TRUE(std::isfinite(npm.at(40, 7, 1, combo))) << "combo " << combo;

  AlignedBase ab;
  ab.base = 1;
  ab.quality = 40;
  ab.coord = 7;
  ab.strand = Strand::kForward;

  BaseOccWindow occ(1);
  occ.add(0, ab);
  const TypeLikely dense = likelihood_dense_site(occ.site(0), pm);
  const TypeLikely sparse =
      likelihood_sparse_site(std::vector<u32>{base_word_pack(ab)}, npm);
  for (int g = 0; g < kNumGenotypes; ++g) {
    EXPECT_TRUE(std::isfinite(dense[g])) << "genotype " << g;
    ASSERT_EQ(dense[g], sparse[g]) << "genotype " << g;
  }
  // The clamp floor really bites for the all-zero allele pairs.
  EXPECT_EQ(dense[genotype_rank(2, 3)], std::log10(kMinAllelePairProb));
}

TEST_F(Likelihood, UnsortedWindowIsRejected) {
  // Algorithm 4's ten-add accumulation and its duplicate-decay bookkeeping
  // are only correct over an ascending base_word stream; a descending pair
  // must be rejected loudly, not silently miscounted.
  const auto obs = random_site(991, 12);
  std::vector<u32> words;
  for (const auto& ab : obs) words.push_back(base_word_pack(ab));
  std::sort(words.begin(), words.end());
  std::swap(words.front(), words.back());  // descending pair at index 1
#ifdef NDEBUG
  EXPECT_THROW(likelihood_sparse_site(words, *npm_), UnsortedWindowError);
  try {
    likelihood_sparse_site(words, *npm_);
    FAIL() << "expected UnsortedWindowError";
  } catch (const UnsortedWindowError& e) {
    EXPECT_NE(std::string(e.what()).find("not sorted"), std::string::npos);
  }
#else
  EXPECT_DEATH(likelihood_sparse_site(words, *npm_), "sorted");
#endif
}

TEST_F(Likelihood, SimdSparseMatchesScalarBitExact) {
  for (const simd::Level level : simd::supported_levels()) {
    for (u64 seed = 300; seed < 330; ++seed) {
      const auto obs = random_site(seed, static_cast<int>(1 + seed % 50));
      std::vector<u32> words;
      for (const auto& ab : obs) words.push_back(base_word_pack(ab));
      std::sort(words.begin(), words.end());
      const TypeLikely scalar = likelihood_sparse_site(words, *npm_);
      const TypeLikely vec = simd::likelihood_sparse_site(words, *npm_, level);
      for (int g = 0; g < kNumGenotypes; ++g)
        ASSERT_EQ(scalar[g], vec[g])
            << simd::level_name(level) << " seed " << seed << " g " << g;
    }
  }
}

TEST_F(Likelihood, SimdSparseRejectsUnsortedToo) {
  // The vectorized kernels share the scalar sortedness validation.
  std::vector<u32> words = {base_word_pack({3, 40, 9, Strand::kForward}),
                            base_word_pack({0, 40, 2, Strand::kForward})};
  ASSERT_GT(words[0], words[1]);
#ifdef NDEBUG
  for (const simd::Level level : simd::supported_levels())
    EXPECT_THROW(simd::likelihood_sparse_site(words, *npm_, level),
                 UnsortedWindowError)
        << simd::level_name(level);
#endif
}

TEST_F(Likelihood, SimdDenseMatchesScalarBitExact) {
  for (const simd::Level level : simd::supported_levels()) {
    for (u64 seed = 400; seed < 420; ++seed) {
      const auto obs = random_site(seed, static_cast<int>(1 + seed % 60));
      BaseOccWindow window(1);
      for (const auto& ab : obs) window.add(0, ab);
      const TypeLikely scalar = likelihood_dense_site(window.site(0), *pm_);
      const TypeLikely vec =
          simd::likelihood_dense_site(window.site(0), *pm_, level);
      for (int g = 0; g < kNumGenotypes; ++g)
        ASSERT_EQ(scalar[g], vec[g])
            << simd::level_name(level) << " seed " << seed << " g " << g;
    }
  }
}

TEST_F(Likelihood, SimdSelectMatchesScalarBitExact) {
  Rng rng(555);
  for (int trial = 0; trial < 200; ++trial) {
    GenotypePriors prior;
    TypeLikely likely;
    for (int g = 0; g < kNumGenotypes; ++g) {
      prior[g] = -10.0 * rng.uniform_double();
      likely[g] = -50.0 * rng.uniform_double();
    }
    const PosteriorCall scalar = select_genotype(prior, likely);
    for (const simd::Level level : simd::supported_levels()) {
      const PosteriorCall vec = simd::select_genotype(prior, likely, level);
      EXPECT_EQ(scalar.best, vec.best) << simd::level_name(level);
      EXPECT_EQ(scalar.second, vec.second) << simd::level_name(level);
      EXPECT_EQ(scalar.quality, vec.quality) << simd::level_name(level);
    }
  }
}

TEST_F(Likelihood, SimdLevelNamesRoundTrip) {
  for (const simd::Level level : simd::supported_levels()) {
    const auto back = simd::level_from_name(simd::level_name(level));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, level);
  }
  EXPECT_FALSE(simd::level_from_name("warp9").has_value());
  // Scalar is always supported and always in the list.
  EXPECT_TRUE(simd::level_supported(simd::Level::kScalar));
  EXPECT_FALSE(simd::supported_levels().empty());
  EXPECT_EQ(simd::supported_levels().front(), simd::Level::kScalar);
}

TEST_F(Likelihood, CpuSortMatchesStdSortPerSite) {
  BaseWordWindow window(5);
  Rng rng(77);
  std::vector<std::vector<u32>> expected;
  window.offsets = {0};
  for (u32 s = 0; s < 5; ++s) {
    const auto obs = random_site(200 + s, static_cast<int>(rng.uniform(30)));
    std::vector<u32> words;
    for (const auto& ab : obs) words.push_back(base_word_pack(ab));
    window.words.insert(window.words.end(), words.begin(), words.end());
    window.offsets.push_back(window.words.size());
    std::sort(words.begin(), words.end());
    expected.push_back(std::move(words));
  }
  likelihood_sort_cpu(window);
  for (u32 s = 0; s < 5; ++s) {
    const auto site = window.site(s);
    EXPECT_TRUE(std::equal(site.begin(), site.end(), expected[s].begin(),
                           expected[s].end()));
  }
}

// ---- device kernels ------------------------------------------------------------

class LikelihoodDevice : public Likelihood {
 protected:
  static BaseWordWindow make_window(u32 n_sites, u64 seed) {
    BaseWordWindow window(n_sites);
    Rng rng(seed);
    window.offsets = {0};
    for (u32 s = 0; s < n_sites; ++s) {
      const auto obs =
          random_site(seed * 1000 + s, static_cast<int>(rng.uniform(35)));
      std::vector<u32> words;
      for (const auto& ab : obs) words.push_back(base_word_pack(ab));
      std::sort(words.begin(), words.end());
      window.words.insert(window.words.end(), words.begin(), words.end());
      window.offsets.push_back(window.words.size());
    }
    return window;
  }
};

TEST_F(LikelihoodDevice, AllVariantsMatchCpuSparse) {
  device::Device dev;
  const DeviceScoreTables tables(dev, *pm_, *npm_);
  const BaseWordWindow window = make_window(150, 31);

  std::vector<TypeLikely> expected(window.window_size());
  for (u32 s = 0; s < window.window_size(); ++s)
    expected[s] = likelihood_sparse_site(window.site(s), *npm_);

  for (const bool use_shared : {false, true}) {
    for (const bool use_table : {false, true}) {
      const SparseKernelOpts opts{use_shared, use_table};
      const auto result = device_likelihood_sparse(dev, window, tables, opts);
      ASSERT_EQ(result.size(), expected.size());
      for (u32 s = 0; s < window.window_size(); ++s)
        for (int g = 0; g < kNumGenotypes; ++g)
          ASSERT_EQ(result[s][g], expected[s][g])
              << "site " << s << " g " << g << " shared=" << use_shared
              << " table=" << use_table;
    }
  }
}

TEST_F(LikelihoodDevice, DenseKernelMatchesCpuDense) {
  device::Device dev;
  const DeviceScoreTables tables(dev, *pm_, *npm_);
  const BaseWordWindow window = make_window(40, 57);

  const auto device_result = device_likelihood_dense(dev, window, tables);
  for (u32 s = 0; s < window.window_size(); ++s) {
    BaseOccWindow occ(1);
    for (const u32 w : window.site(s)) occ.add(0, base_word_unpack(w));
    const TypeLikely expected = likelihood_dense_site(occ.site(0), *pm_);
    for (int g = 0; g < kNumGenotypes; ++g)
      ASSERT_EQ(device_result[s][g], expected[g]) << "site " << s;
  }
}

TEST_F(LikelihoodDevice, SharedMemoryVariantReducesGlobalTraffic) {
  // The Fig 8 / Table III effect, asserted on real counters.
  device::Device dev;
  const DeviceScoreTables tables(dev, *pm_, *npm_);
  const BaseWordWindow window = make_window(200, 71);

  dev.reset_counters();
  device_likelihood_sparse(dev, window, tables, {false, true});
  const auto base = dev.counters();
  dev.reset_counters();
  device_likelihood_sparse(dev, window, tables, {true, true});
  const auto shared = dev.counters();

  EXPECT_LT(shared.global_loads() + shared.global_stores(),
            base.global_loads() + base.global_stores());
  EXPECT_GT(shared.shared_loads, 0u);
  EXPECT_EQ(base.shared_loads, 0u);
}

TEST_F(LikelihoodDevice, NewTableVariantHalvesTableReadsAndDropsLog10) {
  device::Device dev;
  const DeviceScoreTables tables(dev, *pm_, *npm_);
  const BaseWordWindow window = make_window(200, 73);

  dev.reset_counters();
  device_likelihood_sparse(dev, window, tables, {true, false});
  const auto log10_variant = dev.counters();
  dev.reset_counters();
  device_likelihood_sparse(dev, window, tables, {true, true});
  const auto table_variant = dev.counters();

  // 20 p_matrix reads/word -> 10 new_p reads/word, and the transcendental
  // instruction cost disappears.
  EXPECT_LT(table_variant.global_loads_random,
            log10_variant.global_loads_random);
  EXPECT_LT(table_variant.instructions, log10_variant.instructions);
}

TEST_F(LikelihoodDevice, DenseKernelStreamsWholeMatrix) {
  device::Device dev;
  const DeviceScoreTables tables(dev, *pm_, *npm_);
  const BaseWordWindow window = make_window(8, 91);
  dev.reset_counters();
  device_likelihood_dense(dev, window, tables);
  // Must read at least window_size * 131,072 dense cells.
  EXPECT_GE(dev.counters().global_load_bytes_coalesced,
            8ull * kBaseOccPerSite);
}

}  // namespace
}  // namespace gsnp::core
