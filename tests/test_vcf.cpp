// Tests for the VCF exporter.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/core/vcf.hpp"

namespace gsnp::core {
namespace {

namespace fs = std::filesystem;

SnpRow het_row() {
  SnpRow row;
  row.pos = 41;  // -> POS 42 in VCF
  row.ref_base = base_from_char('A');
  row.genotype_rank = static_cast<i8>(genotype_rank(0, 2));  // A/G
  row.quality = 57;
  row.depth = 14;
  row.rank_sum_p = 0.4321;
  row.copy_number = 1.05;
  row.in_dbsnp = true;
  return row;
}

TEST(Vcf, HeaderHasRequiredLines) {
  std::ostringstream os;
  write_vcf_header(os, "chrV", 1000, {});
  const std::string header = os.str();
  EXPECT_NE(header.find("##fileformat=VCFv4.2"), std::string::npos);
  EXPECT_NE(header.find("##contig=<ID=chrV,length=1000>"), std::string::npos);
  EXPECT_NE(header.find("#CHROM\tPOS\tID\tREF\tALT"), std::string::npos);
}

TEST(Vcf, HetLine) {
  const std::string line = format_vcf_line("chrV", het_row(), {});
  EXPECT_EQ(line, "chrV\t42\t.\tA\tG\t57\tPASS\t"
                  "DP=14;RSP=0.4321;CN=1.05;DB\tGT:GQ\t0/1:57");
}

TEST(Vcf, HomAltLine) {
  SnpRow row = het_row();
  row.genotype_rank = static_cast<i8>(genotype_rank(2, 2));  // GG
  row.in_dbsnp = false;
  const std::string line = format_vcf_line("chrV", row, {});
  EXPECT_NE(line.find("\tA\tG\t"), std::string::npos);
  EXPECT_NE(line.find("\t1/1:"), std::string::npos);
  EXPECT_EQ(line.find(";DB"), std::string::npos);
}

TEST(Vcf, DoubleNonRefHet) {
  SnpRow row = het_row();
  row.genotype_rank = static_cast<i8>(genotype_rank(1, 2));  // C/G, ref A
  const std::string line = format_vcf_line("chrV", row, {});
  EXPECT_NE(line.find("\tA\tC,G\t"), std::string::npos);
  EXPECT_NE(line.find("\t1/2:"), std::string::npos);
}

TEST(Vcf, HomRefFilteredByDefault) {
  SnpRow row = het_row();
  row.genotype_rank = static_cast<i8>(genotype_rank(0, 0));
  EXPECT_TRUE(format_vcf_line("chrV", row, {}).empty());
  VcfOptions all;
  all.include_ref_sites = true;
  const std::string line = format_vcf_line("chrV", row, all);
  EXPECT_NE(line.find("\t0/0:"), std::string::npos);
}

TEST(Vcf, QualityFilter) {
  VcfOptions options;
  options.min_quality = 60;
  EXPECT_TRUE(format_vcf_line("chrV", het_row(), options).empty());
  options.min_quality = 57;
  EXPECT_FALSE(format_vcf_line("chrV", het_row(), options).empty());
}

TEST(Vcf, UncallableSitesFiltered) {
  SnpRow row = het_row();
  row.genotype_rank = -1;
  EXPECT_TRUE(format_vcf_line("chrV", row, {}).empty());
  row = het_row();
  row.ref_base = kInvalidBase;
  EXPECT_TRUE(format_vcf_line("chrV", row, {}).empty());
}

TEST(Vcf, FileExportCountsVariants) {
  std::vector<SnpRow> rows;
  for (int i = 0; i < 10; ++i) {
    SnpRow row = het_row();
    row.pos = static_cast<u64>(i);
    if (i % 2 == 0) row.genotype_rank = static_cast<i8>(genotype_rank(0, 0));
    rows.push_back(row);
  }
  const fs::path path = fs::temp_directory_path() / "gsnp_test.vcf";
  const u64 n = write_vcf_file(path, "chrV", 10, rows);
  EXPECT_EQ(n, 5u);

  std::ifstream in(path);
  std::string line;
  u64 data_lines = 0;
  while (std::getline(in, line))
    if (!line.empty() && line[0] != '#') ++data_lines;
  EXPECT_EQ(data_lines, 5u);
  fs::remove(path);
}

}  // namespace
}  // namespace gsnp::core
