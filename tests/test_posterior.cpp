// Tests for the Bayesian posterior: genotype priors, the rank-sum test, and
// the per-site output row computation.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/core/posterior.hpp"
#include "src/core/prior.hpp"
#include "src/core/ranksum.hpp"

namespace gsnp::core {
namespace {

// ---- priors -----------------------------------------------------------------

TEST(Prior, LinearMassSumsToOne) {
  const PriorParams params;
  for (u8 r = 0; r < kNumBases; ++r) {
    const GenotypePriors lp = genotype_log_priors(r, nullptr, params);
    double total = 0.0;
    for (const double v : lp) total += std::pow(10.0, v);
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST(Prior, HomRefDominates) {
  const PriorParams params;
  for (u8 r = 0; r < kNumBases; ++r) {
    const GenotypePriors lp = genotype_log_priors(r, nullptr, params);
    const int rr = genotype_rank(r, r);
    for (int g = 0; g < kNumGenotypes; ++g)
      if (g != rr) EXPECT_GT(lp[rr], lp[g]);
  }
}

TEST(Prior, TransitionFavoredOverTransversion) {
  const PriorParams params;
  // ref A: transition partner G, transversion partners C and T.
  const GenotypePriors lp = genotype_log_priors(0, nullptr, params);
  EXPECT_GT(lp[genotype_rank(0, 2)], lp[genotype_rank(0, 1)]);  // AG > AC
  EXPECT_GT(lp[genotype_rank(0, 2)], lp[genotype_rank(0, 3)]);  // AG > AT
}

TEST(Prior, HetRateHonored) {
  PriorParams params;
  params.novel_het_rate = 1e-3;
  const GenotypePriors lp = genotype_log_priors(0, nullptr, params);
  double het_mass = 0.0;
  for (const u8 alt : {1, 2, 3})
    het_mass += std::pow(10.0, lp[genotype_rank(0, alt)]);
  EXPECT_NEAR(het_mass, 1e-3, 1e-5);
}

TEST(Prior, NRefGivesFlatPrior) {
  const PriorParams params;
  const GenotypePriors lp = genotype_log_priors(kInvalidBase, nullptr, params);
  for (int g = 1; g < kNumGenotypes; ++g) EXPECT_DOUBLE_EQ(lp[g], lp[0]);
}

TEST(Prior, DbSnpShiftsMassTowardListedAllele) {
  const PriorParams params;
  genome::KnownSnpEntry known;
  known.freq = {0.6, 0.0, 0.4, 0.0};  // A and G alleles
  known.validated = true;

  const GenotypePriors novel = genotype_log_priors(0, nullptr, params);
  const GenotypePriors with_db = genotype_log_priors(0, &known, params);
  // Het AG jumps by orders of magnitude at a known site.
  EXPECT_GT(with_db[genotype_rank(0, 2)], novel[genotype_rank(0, 2)] + 1.0);
  // Hom ref mass decreases.
  EXPECT_LT(with_db[genotype_rank(0, 0)], novel[genotype_rank(0, 0)]);
}

TEST(Prior, ValidatedEntriesWeighHeavier) {
  const PriorParams params;
  genome::KnownSnpEntry known;
  known.freq = {0.5, 0.0, 0.5, 0.0};
  known.validated = false;
  const GenotypePriors unvalidated = genotype_log_priors(0, &known, params);
  known.validated = true;
  const GenotypePriors validated = genotype_log_priors(0, &known, params);
  EXPECT_GT(validated[genotype_rank(0, 2)], unvalidated[genotype_rank(0, 2)]);
}

// ---- rank-sum -----------------------------------------------------------------

TEST(RankSum, EmptySamplesGiveOne) {
  const std::vector<u8> a = {30, 31};
  EXPECT_DOUBLE_EQ(rank_sum_p({}, a), 1.0);
  EXPECT_DOUBLE_EQ(rank_sum_p(a, {}), 1.0);
}

TEST(RankSum, IdenticalDistributionsGiveHighP) {
  const std::vector<u8> a = {30, 32, 31, 29, 33, 30, 31, 32};
  const std::vector<u8> b = {31, 30, 32, 33, 29, 31, 30, 32};
  EXPECT_GT(rank_sum_p(a, b), 0.5);
}

TEST(RankSum, DisjointDistributionsGiveLowP) {
  const std::vector<u8> high = {40, 41, 42, 43, 44, 45, 46, 47, 48, 49};
  const std::vector<u8> low = {5, 6, 7, 8, 9, 10, 11, 12, 13, 14};
  EXPECT_LT(rank_sum_p(high, low), 0.001);
}

TEST(RankSum, Symmetric) {
  const std::vector<u8> a = {10, 20, 30, 25};
  const std::vector<u8> b = {15, 22, 40};
  EXPECT_NEAR(rank_sum_p(a, b), rank_sum_p(b, a), 1e-12);
}

TEST(RankSum, AllTiedGivesOne) {
  const std::vector<u8> a = {30, 30, 30};
  const std::vector<u8> b = {30, 30};
  EXPECT_DOUBLE_EQ(rank_sum_p(a, b), 1.0);
}

TEST(RankSum, RoundPIsOnGrid) {
  for (const double p : {0.123456, 0.99999, 1e-9, 0.5}) {
    const double r = round_p(p);
    EXPECT_NEAR(r * 1e4, std::round(r * 1e4), 1e-9);
    EXPECT_NEAR(r, p, 5e-5);
  }
}

// ---- compute_posterior ---------------------------------------------------------

class Posterior : public ::testing::Test {
 protected:
  /// Build consistent (type_likely, stats, obs, hits) for n_a reads of
  /// base_a and n_b of base_b — likelihood shaped like clean q40 data.
  void build_site(u8 base_a, int n_a, u8 base_b, int n_b) {
    obs_.clear();
    hits_.clear();
    stats_ = SiteStats{};
    tl_ = TypeLikely{};
    int coord = 0;
    const auto add = [&](u8 base, int count) {
      for (int i = 0; i < count; ++i) {
        AlignedBase ab;
        ab.base = base;
        ab.quality = 40;
        ab.coord = static_cast<u16>(coord++ * 3);
        obs_.push_back(ab);
        hits_.push_back(1);
        ++stats_.count_uniq[base];
        ++stats_.count_all[base];
        stats_.qual_sum_all[base] += 40;
        ++stats_.depth;
        stats_.hit_sum += 1;
        // Simple independent-evidence likelihood: matching allele ~ log10(1),
        // half-match ~ log10(0.5), miss ~ log10(1e-4).
        for (int g = 0; g < kNumGenotypes; ++g) {
          const Genotype gt = genotype_from_rank(g);
          const int match = (gt.allele1 == base) + (gt.allele2 == base);
          tl_[g] += match == 2 ? -1e-5 : (match == 1 ? -0.301 : -4.0);
        }
      }
    };
    add(base_a, n_a);
    if (n_b > 0) add(base_b, n_b);
  }

  SnpRow call(u8 ref, const genome::KnownSnpEntry* known = nullptr) {
    return compute_posterior(100, ref, known, params_, tl_, stats_, obs_,
                             hits_);
  }

  PriorParams params_;
  TypeLikely tl_{};
  SiteStats stats_;
  std::vector<AlignedBase> obs_;
  std::vector<u32> hits_;
};

TEST_F(Posterior, CleanHomRefCallsHomRef) {
  build_site(/*A*/ 0, 12, 0, 0);
  const SnpRow row = call(0);
  EXPECT_EQ(row.genotype_rank, genotype_rank(0, 0));
  EXPECT_GT(row.quality, 20);
  EXPECT_EQ(row.best_base, 0);
  EXPECT_EQ(row.best_uniq_count, 12u);
  EXPECT_EQ(row.second_base, kInvalidBase);
  EXPECT_FALSE(row.in_dbsnp);
}

TEST_F(Posterior, BalancedEvidenceCallsHet) {
  build_site(/*A*/ 0, 6, /*G*/ 2, 6);
  const SnpRow row = call(0);
  EXPECT_EQ(row.genotype_rank, genotype_rank(0, 2));
  EXPECT_EQ(row.best_all_count, 6u);
  EXPECT_EQ(row.second_all_count, 6u);
}

TEST_F(Posterior, StrongAltEvidenceCallsHomAlt) {
  build_site(/*T*/ 3, 14, 0, 0);
  const SnpRow row = call(/*ref C*/ 1);
  EXPECT_EQ(row.genotype_rank, genotype_rank(3, 3));
  EXPECT_EQ(row.best_base, 3);
}

TEST_F(Posterior, QualityGrowsWithDepth) {
  // Shallow depths keep both calls below the 99 clamp.
  build_site(0, 2, 2, 2);
  const u16 q_shallow = call(0).quality;
  build_site(0, 3, 2, 3);
  const u16 q_deep = call(0).quality;
  EXPECT_GT(q_deep, q_shallow);
  EXPECT_LT(q_deep, 99);
}

TEST_F(Posterior, NoCoverageGivesQualityZeroAndPriorCall) {
  build_site(0, 0, 0, 0);
  const SnpRow row = call(2);
  EXPECT_EQ(row.quality, 0);
  EXPECT_EQ(row.genotype_rank, genotype_rank(2, 2));  // prior-only: hom ref
  EXPECT_EQ(row.best_base, kInvalidBase);
  EXPECT_EQ(row.depth, 0u);
  EXPECT_DOUBLE_EQ(row.rank_sum_p, 1.0);
}

TEST_F(Posterior, BestAndSecondOrderedByUniqueCount) {
  build_site(/*G*/ 2, 9, /*T*/ 3, 4);
  const SnpRow row = call(2);
  EXPECT_EQ(row.best_base, 2);
  EXPECT_EQ(row.second_base, 3);
  EXPECT_EQ(row.best_uniq_count, 9u);
  EXPECT_EQ(row.second_uniq_count, 4u);
  EXPECT_EQ(row.best_avg_quality, 40);
}

TEST_F(Posterior, CopyNumberAveragesHitCounts) {
  build_site(0, 4, 0, 0);
  // Make two of the observations multi-hit (hit_count 3).
  hits_[0] = 3;
  hits_[1] = 3;
  stats_.hit_sum = 3 + 3 + 1 + 1;
  const SnpRow row = call(0);
  EXPECT_DOUBLE_EQ(row.copy_number, 2.0);  // 8 / 4
}

TEST_F(Posterior, RankSumComputedBetweenBestAndSecond) {
  build_site(0, 8, 2, 8);
  // Skew qualities: A reads high, G reads low.
  for (std::size_t i = 0; i < obs_.size(); ++i)
    obs_[i].quality = obs_[i].base == 0 ? 45 : 8;
  const SnpRow row = call(0);
  EXPECT_LT(row.rank_sum_p, 0.05);
}

TEST_F(Posterior, DbSnpFlagSetWhenEntryPresent) {
  build_site(0, 10, 0, 0);
  genome::KnownSnpEntry known;
  known.freq = {0.9, 0.0, 0.1, 0.0};
  const SnpRow row = call(0, &known);
  EXPECT_TRUE(row.in_dbsnp);
}

TEST_F(Posterior, MultiHitReadsExcludedFromConsensusQualityGate) {
  // Only multi-hit evidence -> quality must be 0 (prior-only call).
  build_site(0, 5, 0, 0);
  for (auto& h : hits_) h = 4;
  const SnpRow row = call(0);
  EXPECT_EQ(row.quality, 0);
}

// ---- snp_row text format ------------------------------------------------------------

TEST(SnpRowFormat, RoundTrip) {
  SnpRow row;
  row.pos = 12344;
  row.ref_base = 1;
  row.genotype_rank = static_cast<i8>(genotype_rank(1, 3));
  row.quality = 57;
  row.best_base = 1;
  row.best_avg_quality = 38;
  row.best_uniq_count = 7;
  row.best_all_count = 8;
  row.second_base = 3;
  row.second_avg_quality = 31;
  row.second_uniq_count = 5;
  row.second_all_count = 5;
  row.depth = 13;
  row.rank_sum_p = 0.1234;
  row.copy_number = 1.25;
  row.in_dbsnp = true;

  std::string seq_name;
  const SnpRow parsed =
      parse_snp_row(format_snp_row("chrZ", row), seq_name);
  EXPECT_EQ(seq_name, "chrZ");
  EXPECT_EQ(parsed, row);
}

TEST(SnpRowFormat, SeventeenColumns) {
  const SnpRow row;
  const std::string line = format_snp_row("c", row);
  EXPECT_EQ(std::count(line.begin(), line.end(), '\t'), 16);
}

TEST(SnpRowFormat, IupacCodes) {
  EXPECT_EQ(iupac_from_rank(genotype_rank(0, 0)), 'A');
  EXPECT_EQ(iupac_from_rank(genotype_rank(0, 2)), 'R');  // A/G
  EXPECT_EQ(iupac_from_rank(genotype_rank(1, 3)), 'Y');  // C/T
  EXPECT_EQ(iupac_from_rank(genotype_rank(2, 3)), 'K');  // G/T
  for (int g = 0; g < kNumGenotypes; ++g)
    EXPECT_EQ(rank_from_iupac(iupac_from_rank(g)), g);
  EXPECT_EQ(rank_from_iupac('N'), -1);
}

}  // namespace
}  // namespace gsnp::core
