// Reproduces paper Table III: hardware counters for likelihood_comp under
// the optimization variants (Ch.1 analog) — #instructions (per warp),
// #global loads, #global stores, #shared loads/stores (per warp).
//
// Counters come from the device simulator's instrumented accessors; like the
// CUDA Visual Profiler, instruction and shared-memory counters are reported
// per warp (raw count / 32).
//
// Expected shape: w/ shared cuts global loads to ~70% and stores to ~68% of
// baseline and introduces shared traffic; w/ new table cuts instructions to
// ~73% and loads to ~64%; combined, instructions ~70% and total global
// accesses ~51%.

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "src/core/kernels.hpp"
#include "src/core/likelihood.hpp"
#include "src/core/window.hpp"
#include "src/obs/profiler.hpp"
#include "src/reads/alignment.hpp"

using namespace gsnp;
using namespace gsnp::bench;

namespace {

/// Load, count and sort the dataset into BaseWordWindow units (the sparse
/// representation both kernels consume).
std::vector<core::BaseWordWindow> make_windows(const Dataset& data) {
  std::vector<core::BaseWordWindow> windows;
  auto reader = std::make_shared<reads::AlignmentReader>(data.align_file);
  core::WindowLoader loader([reader] { return reader->next(); },
                            data.ref.size(), 65'536);
  core::WindowRecords win;
  core::WindowObs obs;
  std::vector<core::SiteStats> stats;
  while (loader.next(win)) {
    core::BaseWordWindow sparse(0);
    core::count_window(win, obs, stats, nullptr, &sparse);
    core::likelihood_sort_cpu(sparse);
    windows.push_back(std::move(sparse));
  }
  return windows;
}

}  // namespace

int main(int argc, char** argv) {
  const u64 chr1_sites = flag_u64(argc, argv, "--chr1-sites", 120'000);
  print_banner("bench_table3_counters",
               "Table III: hardware counters for likelihood_comp (Ch.1)",
               "PW counters are per-warp (raw / 32), like the CUDA profiler.");
  const fs::path dir = bench_dir("table3");

  const Dataset data = make_dataset(ch1_spec(chr1_sites), dir);

  // Train tables.
  core::PMatrixCounter counter;
  {
    reads::AlignmentReader reader(data.align_file);
    while (auto rec = reader.next()) {
      if (rec->hit_count != 1) continue;
      for (u64 p = rec->pos; p < rec->pos + rec->length; ++p) {
        const u8 r = data.ref.base(p);
        if (r >= kNumBases) continue;
        reads::SiteObservation so;
        if (reads::observe_site(*rec, p, so))
          counter.add(so.quality, so.coord, r, so.base);
      }
    }
  }
  const core::PMatrix pm = core::finalize_p_matrix(counter);
  const core::NewPMatrix npm(pm);
  device::Device dev;
  const core::DeviceScoreTables tables(dev, pm, npm);

  // Sorted windows.
  const std::vector<core::BaseWordWindow> windows = make_windows(data);

  const struct {
    const char* name;
    core::SparseKernelOpts opts;
  } kVariants[] = {
      {"baseline", {false, false}},
      {"w/ shared", {true, false}},
      {"w/ new table", {false, true}},
      {"optimized", {true, true}},
  };

  std::printf("%-14s %12s %12s %12s %12s %12s\n", "", "#inst.PW", "#g_load",
              "#g_store", "#s_load PW", "#s_store PW");
  device::DeviceCounters baseline;
  std::vector<obs::ProfileReport> variant_profiles;
  for (const auto& variant : kVariants) {
    const auto before = dev.counters();
    {
      obs::Profiler profiler(dev);
      for (const auto& window : windows)
        (void)core::device_likelihood_sparse(dev, window, tables, variant.opts);
      variant_profiles.push_back(profiler.report());
    }
    const auto c = device::counters_delta(before, dev.counters());
    if (std::string(variant.name) == "baseline") baseline = c;
    std::printf("%-14s %12.3g %12.3g %12.3g %12.3g %12.3g\n", variant.name,
                static_cast<double>(c.instructions) / device::kWarpSize,
                static_cast<double>(c.global_loads()),
                static_cast<double>(c.global_stores()),
                static_cast<double>(c.shared_loads) / device::kWarpSize,
                static_cast<double>(c.shared_stores) / device::kWarpSize);
    if (std::string(variant.name) != "baseline") {
      std::printf("%-14s %11.0f%% %11.0f%% %11.0f%%\n", "  (vs baseline)",
                  100.0 * static_cast<double>(c.instructions) /
                      static_cast<double>(baseline.instructions),
                  100.0 * static_cast<double>(c.global_loads()) /
                      static_cast<double>(baseline.global_loads()),
                  100.0 * static_cast<double>(c.global_stores()) /
                      static_cast<double>(baseline.global_stores()));
    }
  }
  print_paper_note("paper Ch.1: baseline 3.3e10 / 3.3e8 / 3.7e8 / 0 / 0; "
                   "w/shared -> loads 70%, stores 68%; w/table -> inst 73%, "
                   "loads 64%; optimized -> inst 70%, total accesses 51%");

  // Live per-kernel view of the same comparison through the profiler:
  // optimized vs baseline, attributed by kernel name.
  std::printf("\n");
  std::fputs(obs::format_profile_diff(variant_profiles.front(),
                                      variant_profiles.back(), "baseline",
                                      "optimized")
                 .c_str(),
             stdout);

  // Dense base_occ vs sparse base_word (the paper's headline Table III
  // contrast), profiled over one shared smaller dataset — the dense kernel
  // streams the full 4^9-cell matrix per site, so it gets its own site cap.
  const u64 dense_sites = flag_u64(argc, argv, "--dense-sites", 8'192);
  if (dense_sites > 0) {
    const Dataset small =
        make_dataset(ch1_spec(dense_sites), bench_dir("table3_dense"));
    const std::vector<core::BaseWordWindow> small_windows =
        make_windows(small);
    obs::ProfileReport dense_prof, sparse_prof;
    {
      obs::Profiler profiler(dev);
      for (const auto& window : small_windows)
        (void)core::device_likelihood_dense(dev, window, tables);
      dense_prof = profiler.report();
    }
    {
      obs::Profiler profiler(dev);
      for (const auto& window : small_windows)
        (void)core::device_likelihood_sparse(dev, window, tables, {true, true});
      sparse_prof = profiler.report();
    }
    std::printf("\ndense base_occ vs sparse base_word (%llu sites):\n",
                static_cast<unsigned long long>(dense_sites));
    std::fputs(
        obs::format_profile_diff(dense_prof, sparse_prof, "dense", "sparse")
            .c_str(),
        stdout);
  }
  return 0;
}
