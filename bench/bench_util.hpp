#pragma once
// Shared utilities for the paper-reproduction benchmark harness: scaled
// dataset construction (Ch.1 / Ch.21 analogs), engine config helpers, flag
// parsing, and table printing.
//
// Scale: the paper's Ch.1 has 247M sites; benches default to a few hundred
// thousand so the whole harness runs in minutes on one core.  Every binary
// accepts --chr1-sites=N (and friends) to scale up.

#include <filesystem>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/genome/dbsnp.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"
#include "src/reads/stats.hpp"

namespace gsnp::bench {

namespace fs = std::filesystem;

/// Paper Table II ratio: Ch.21 sites / Ch.1 sites = 47M / 247M.
inline constexpr double kCh21Ratio = 47.0 / 247.0;

struct DatasetSpec {
  std::string name = "chr1";
  u64 sites = 100'000;
  double depth = 11.0;  ///< Ch.1 is 11x in the paper; Ch.21 9.6x
  double snp_rate = 0.001;
  double mappable = 1.0;  ///< coverage target (paper: 88% Ch.1, 68% Ch.21)
  u64 seed = 1;
};

/// A generated dataset on disk plus in-memory handles.
struct Dataset {
  genome::Reference ref;
  std::vector<genome::PlantedSnp> snps;
  genome::DbSnpTable dbsnp;
  fs::path align_file;
  u64 align_bytes = 0;
  u64 num_reads = 0;
  reads::DatasetStats stats;
};

/// Generate reference + reads and write the alignment file under `dir`.
Dataset make_dataset(const DatasetSpec& spec, const fs::path& dir);

/// Ch.1 / Ch.21 analogs scaled from a chr1 site count.
DatasetSpec ch1_spec(u64 chr1_sites);
DatasetSpec ch21_spec(u64 chr1_sites);

/// Engine config pointing at a dataset (output/temp under `dir`).
core::EngineConfig config_for(const Dataset& data, const fs::path& dir,
                              const std::string& tag);

/// Scratch directory for a bench binary (created; caller may remove).
fs::path bench_dir(const std::string& bench_name);

// ---- flags ------------------------------------------------------------------

u64 flag_u64(int argc, char** argv, const std::string& name, u64 fallback);
double flag_double(int argc, char** argv, const std::string& name,
                   double fallback);

// ---- printing ----------------------------------------------------------------

/// Banner naming the experiment and the paper artifact it regenerates.
void print_banner(const std::string& bench_name, const std::string& paper_ref,
                  const std::string& note);

/// "what the paper reports" footnote line.
void print_paper_note(const std::string& note);

}  // namespace gsnp::bench
