#include "bench_util.hpp"

#include <cstdio>
#include <cstring>

namespace gsnp::bench {

Dataset make_dataset(const DatasetSpec& spec, const fs::path& dir) {
  fs::create_directories(dir);
  Dataset data;

  genome::GenomeSpec gspec;
  gspec.name = spec.name;
  gspec.length = spec.sites;
  gspec.seed = spec.seed;
  data.ref = genome::generate_reference(gspec);

  genome::SnpPlantSpec pspec;
  pspec.snp_rate = spec.snp_rate;
  pspec.seed = spec.seed + 1;
  data.snps = genome::plant_snps(data.ref, pspec);
  const genome::Diploid individual(data.ref, data.snps);
  data.dbsnp = genome::make_dbsnp(data.ref, data.snps, 0.002, spec.seed + 2);

  reads::ReadSimSpec rspec;
  rspec.depth = spec.depth;
  rspec.mappable_fraction = spec.mappable;
  rspec.seed = spec.seed + 3;
  const auto records = reads::simulate_reads(individual, rspec);
  data.num_reads = records.size();
  data.stats = reads::compute_stats(records, data.ref.size());

  data.align_file = dir / (spec.name + ".soap");
  reads::write_alignment_file(data.align_file, records);
  data.align_bytes = fs::file_size(data.align_file);
  return data;
}

DatasetSpec ch1_spec(u64 chr1_sites) {
  DatasetSpec spec;
  spec.name = "chr1";
  spec.sites = chr1_sites;
  spec.depth = 11.0;  // paper Table II
  spec.mappable = 0.88;
  spec.seed = 101;
  return spec;
}

DatasetSpec ch21_spec(u64 chr1_sites) {
  DatasetSpec spec;
  spec.name = "chr21";
  spec.sites = static_cast<u64>(kCh21Ratio * static_cast<double>(chr1_sites));
  spec.depth = 9.6;  // paper Table II
  spec.mappable = 0.68;
  spec.seed = 121;
  return spec;
}

core::EngineConfig config_for(const Dataset& data, const fs::path& dir,
                              const std::string& tag) {
  core::EngineConfig config;
  config.alignment_file = data.align_file;
  config.reference = &data.ref;
  config.dbsnp = &data.dbsnp;
  config.temp_file = dir / (data.ref.name() + "." + tag + ".tmp");
  config.output_file = dir / (data.ref.name() + "." + tag + ".out");
  return config;
}

fs::path bench_dir(const std::string& bench_name) {
  const fs::path dir = fs::temp_directory_path() / ("gsnp_" + bench_name);
  fs::create_directories(dir);
  return dir;
}

namespace {

const char* find_flag(int argc, char** argv, const std::string& name) {
  const std::string prefix = name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return argv[i] + prefix.size();
  }
  return nullptr;
}

}  // namespace

u64 flag_u64(int argc, char** argv, const std::string& name, u64 fallback) {
  const char* value = find_flag(argc, argv, name);
  return value ? std::strtoull(value, nullptr, 10) : fallback;
}

double flag_double(int argc, char** argv, const std::string& name,
                   double fallback) {
  const char* value = find_flag(argc, argv, name);
  return value ? std::strtod(value, nullptr) : fallback;
}

void print_banner(const std::string& bench_name, const std::string& paper_ref,
                  const std::string& note) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s — reproduces %s\n", bench_name.c_str(), paper_ref.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("==============================================================="
              "=========\n");
}

void print_paper_note(const std::string& note) {
  std::printf("  [paper] %s\n", note.c_str());
}

}  // namespace gsnp::bench
