// Reproduces paper Fig 8: likelihood_comp kernel time under the two
// optimizations — baseline, shared-memory only, new-score-table only, and
// both ("optimized").  Sorting is excluded (the optimizations don't apply).
//
// Expected shape: optimized ~2.4x over baseline; shared memory alone brings
// the baseline to ~55%, the new table alone to ~78%.

#include <cstdio>

#include "bench_util.hpp"
#include "src/core/kernels.hpp"
#include "src/core/likelihood.hpp"
#include "src/core/window.hpp"
#include "src/device/perf_model.hpp"
#include "src/reads/alignment.hpp"

using namespace gsnp;
using namespace gsnp::bench;

namespace {

/// Load the whole dataset into sorted per-site base_word windows.
std::vector<core::BaseWordWindow> sorted_windows(const Dataset& data,
                                                 u32 window_size) {
  std::vector<core::BaseWordWindow> windows;
  auto reader = std::make_shared<reads::AlignmentReader>(data.align_file);
  core::WindowLoader loader([reader] { return reader->next(); },
                            data.ref.size(), window_size);
  core::WindowRecords win;
  core::WindowObs obs;
  std::vector<core::SiteStats> stats;
  while (loader.next(win)) {
    core::BaseWordWindow sparse(0);
    core::count_window(win, obs, stats, nullptr, &sparse);
    core::likelihood_sort_cpu(sparse);
    windows.push_back(std::move(sparse));
  }
  return windows;
}

core::PMatrix train_pmatrix(const Dataset& data) {
  core::PMatrixCounter counter;
  reads::AlignmentReader reader(data.align_file);
  while (auto rec = reader.next()) {
    if (rec->hit_count != 1) continue;
    for (u64 p = rec->pos; p < rec->pos + rec->length; ++p) {
      const u8 r = data.ref.base(p);
      if (r >= kNumBases) continue;
      reads::SiteObservation so;
      if (reads::observe_site(*rec, p, so))
        counter.add(so.quality, so.coord, r, so.base);
    }
  }
  return core::finalize_p_matrix(counter);
}

}  // namespace

int main(int argc, char** argv) {
  const u64 chr1_sites = flag_u64(argc, argv, "--chr1-sites", 120'000);
  print_banner("bench_fig8_comp_opts",
               "Fig 8: likelihood_comp with/without shared memory and the "
               "new score table",
               "Modeled M2050 seconds from measured kernel operation counts; "
               "sorting excluded as in the paper.");
  const fs::path dir = bench_dir("fig8");
  const device::PerfModel model;

  const struct {
    const char* name;
    core::SparseKernelOpts opts;
  } kVariants[] = {
      {"baseline", {false, false}},
      {"w/ shared", {true, false}},
      {"w/ new table", {false, true}},
      {"optimized", {true, true}},
  };

  for (const auto& spec : {ch1_spec(chr1_sites), ch21_spec(chr1_sites)}) {
    const Dataset data = make_dataset(spec, dir);
    const core::PMatrix pm = train_pmatrix(data);
    const core::NewPMatrix npm(pm);
    device::Device dev;
    const core::DeviceScoreTables tables(dev, pm, npm);
    const auto windows = sorted_windows(data, 65'536);

    std::printf("\n%s:\n", spec.name.c_str());
    std::printf("%-14s %12s %12s\n", "variant", "time(s)", "% of baseline");
    double baseline = 0.0;
    for (const auto& variant : kVariants) {
      const auto before = dev.counters();
      for (const auto& window : windows)
        (void)core::device_likelihood_sparse(dev, window, tables,
                                             variant.opts);
      const double seconds =
          model.seconds(device::counters_delta(before, dev.counters()));
      if (baseline == 0.0) baseline = seconds;
      std::printf("%-14s %12.4f %11.0f%%\n", variant.name, seconds,
                  100.0 * seconds / baseline);
    }
  }
  print_paper_note("optimized ~2.4x over baseline; w/ shared -> ~55% of "
                   "baseline; w/ new table -> ~78% of baseline");
  return 0;
}
