// bench_smoke — the benchmark-baseline harness.
//
// Runs a small deterministic whole-genome pipeline (two synthetic
// chromosomes through the full GSNP engine, traced) and emits
// BENCH_pipeline.json: per-stage seconds (host + modeled device), device
// counters, sites/s throughput, and a per-backend REAL host seconds axis
// ("backends": the host sparse engines gsnp_cpu and gsnp_simd over the same
// dataset — total / likelihood / posterior host seconds, best of three
// repetitions, with the SIMD dispatch level that ran).  The sweep asserts
// the backends' outputs are byte-identical to the device engine's before
// timing them, so a speedup that breaks §IV-G cannot enter the baseline.
// The file is the regression baseline a reviewer diffs against when a PR
// claims (or risks) a performance change — scripts/bench_report regenerates
// it, scripts/verify.sh runs this binary and fails when the file is missing
// or malformed.
//
//   bench_smoke [--out FILE] [--workdir DIR]   run + write + self-validate
//   bench_smoke --validate FILE                schema-check an existing file
//   bench_smoke --check BASELINE --candidate FILE [--history F --sha SHA]
//               [--host-band X]                perf-regression sentinel:
//                                              exact compare of deterministic
//                                              counters, strict compare of
//                                              modeled seconds, loose compare
//                                              of host/wall timings within a
//                                              factor-of-X band (default 5);
//                                              on pass, append the candidate
//                                              to the history
//   bench_smoke --append-history FILE --from BENCH.json --sha SHA
//                                              append one history entry
//                                              (used to seed the trajectory)
//
// Exit codes: 0 ok, 1 validation/check failure, 2 usage.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/error.hpp"
#include "src/common/json.hpp"
#include "src/common/timer.hpp"
#include "src/core/backend.hpp"
#include "src/core/genome_pipeline.hpp"
#include "src/core/simd.hpp"
#include "src/genome/synthetic.hpp"
#include "src/obs/trace.hpp"
#include "src/reads/alignment.hpp"
#include "src/reads/simulator.hpp"

namespace fs = std::filesystem;
using namespace gsnp;

namespace {

/// Deterministic two-chromosome dataset: big enough that every pipeline
/// stage, sort pass and compression call runs, small enough for CI.
struct Dataset {
  std::vector<genome::Reference> refs;
  std::vector<core::ChromosomeJob> jobs;
};

Dataset make_dataset(const fs::path& dir) {
  Dataset ds;
  const struct { const char* name; u64 length; u64 seed; } specs[] = {
      {"chrA", 50'000, 101}, {"chrB", 30'000, 202}};
  ds.refs.reserve(std::size(specs));
  for (const auto& s : specs) {
    genome::GenomeSpec gspec;
    gspec.name = s.name;
    gspec.length = s.length;
    gspec.seed = s.seed;
    ds.refs.push_back(genome::generate_reference(gspec));
    const genome::Reference& ref = ds.refs.back();

    genome::SnpPlantSpec pspec;
    pspec.seed = s.seed + 1;
    const genome::Diploid individual(ref, plant_snps(ref, pspec));
    reads::ReadSimSpec rspec;
    rspec.depth = 6.0;
    rspec.seed = s.seed + 2;
    const fs::path align = dir / (std::string(s.name) + ".soap");
    reads::write_alignment_file(align, reads::simulate_reads(individual, rspec));

    core::ChromosomeJob job;
    job.name = s.name;
    job.alignment_file = align;
    ds.jobs.push_back(std::move(job));
  }
  for (std::size_t i = 0; i < ds.refs.size(); ++i)
    ds.jobs[i].reference = &ds.refs[i];
  return ds;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

std::string read_file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  GSNP_CHECK_MSG(in.good(), "cannot open " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// One host backend's measured real seconds over the bench dataset: the
/// best-of-N total host seconds plus the two stages the SIMD backend
/// vectorizes.  `simd_level` records which dispatch level actually ran, so a
/// history entry from a scalar-only CI box is distinguishable from an AVX2
/// one.
struct BackendBench {
  std::string id;
  double host_seconds = 0.0;
  double likeli_seconds = 0.0;
  double post_seconds = 0.0;
  std::string simd_level;
};

/// Run `kind` over the dataset `reps` times (fresh output dir each) and keep
/// per-metric minima — the standard noise filter for real timings.  Before
/// timing counts, the first repetition's output bytes must equal
/// `golden_bytes` (the device engine's outputs): the per-backend axis only
/// ever measures runs that uphold the bit-exactness contract.
BackendBench bench_backend(core::EngineKind kind, const Dataset& ds,
                           const fs::path& workdir,
                           const std::vector<std::string>& golden_bytes,
                           int reps) {
  BackendBench result;
  result.id = core::engine_name(kind);
  result.host_seconds = result.likeli_seconds = result.post_seconds = 1e300;
  result.simd_level =
      kind == core::EngineKind::kGsnpSimd
          ? gsnp::core::simd::level_name(gsnp::core::simd::active_level())
          : "scalar";
  for (int rep = 0; rep < reps; ++rep) {
    core::GenomeRunConfig config;
    config.chromosomes = ds.jobs;
    config.output_dir =
        workdir / ("bk_" + result.id + "_" + std::to_string(rep));
    const core::GenomeReport report = core::run_genome(config, kind);
    double host = 0.0, likeli = 0.0, post = 0.0;
    for (const core::RunReport& r : report.per_chromosome) {
      for (const auto& [name, sec] : r.host.entries()) host += sec;
      likeli += r.host.get("likeli");
      post += r.host.get("post");
    }
    result.host_seconds = std::min(result.host_seconds, host);
    result.likeli_seconds = std::min(result.likeli_seconds, likeli);
    result.post_seconds = std::min(result.post_seconds, post);
    if (rep == 0) {
      GSNP_CHECK_MSG(report.output_files.size() == golden_bytes.size(),
                     result.id << ": chromosome count mismatch");
      for (std::size_t c = 0; c < golden_bytes.size(); ++c)
        GSNP_CHECK_MSG(
            read_file_bytes(report.output_files[c]) == golden_bytes[c],
            result.id << ": output for chromosome " << c
                      << " is not byte-identical to the gsnp engine — "
                         "refusing to record timings for a backend that "
                         "breaks the bit-exactness contract");
    }
  }
  return result;
}

int validate(const fs::path& path) {
  try {
    std::ifstream in(path, std::ios::binary);
    GSNP_CHECK_MSG(in.good(), "cannot open " << path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const json::Value root = json::parse(buf.str());
    GSNP_CHECK_MSG(root.kind == json::Value::Kind::kObject,
                   "top level is not an object");
    GSNP_CHECK_MSG(json::get_string(root, "schema") == "gsnp-bench-pipeline",
                   "wrong schema tag");
    GSNP_CHECK_MSG(json::get_u64(root, "version") == 1, "unsupported version");
    GSNP_CHECK_MSG(json::get_u64(root, "sites") > 0, "sites must be > 0");
    GSNP_CHECK_MSG(json::get_u64(root, "windows") > 0, "windows must be > 0");
    GSNP_CHECK_MSG(json::get_number(root, "throughput_sites_per_sec") > 0.0,
                   "throughput must be > 0");
    GSNP_CHECK_MSG(json::get_number(root, "table_seconds") > 0.0,
                   "table_seconds must be > 0");

    const json::Value* stages = json::find(root, "stages");
    GSNP_CHECK_MSG(stages && stages->kind == json::Value::Kind::kObject,
                   "'stages' object missing");
    for (const char* name : core::kComponents) {
      const json::Value* stage = json::find(*stages, name);
      GSNP_CHECK_MSG(stage != nullptr, "stage '" << name << "' missing");
      GSNP_CHECK_MSG(json::get_number(*stage, "seconds") >= 0.0,
                     "stage '" << name << "' has negative seconds");
      (void)json::get_number(*stage, "host_seconds");
      (void)json::get_number(*stage, "modeled_seconds");
    }

    const json::Value* backends = json::find(root, "backends");
    GSNP_CHECK_MSG(backends && backends->kind == json::Value::Kind::kObject,
                   "'backends' object missing");
    for (const char* name : {"gsnp_cpu", "gsnp_simd"}) {
      const json::Value* b = json::find(*backends, name);
      GSNP_CHECK_MSG(b != nullptr, "backend '" << name << "' missing");
      GSNP_CHECK_MSG(json::get_number(*b, "host_seconds") > 0.0,
                     "backend '" << name << "' has no host seconds");
      GSNP_CHECK_MSG(json::get_number(*b, "likeli_seconds") >= 0.0,
                     "backend '" << name << "' likeli_seconds negative");
      GSNP_CHECK_MSG(json::get_number(*b, "post_seconds") >= 0.0,
                     "backend '" << name << "' post_seconds negative");
      GSNP_CHECK_MSG(!json::get_string(*b, "simd_level").empty(),
                     "backend '" << name << "' simd_level missing");
    }

    const json::Value* dev = json::find(root, "device");
    GSNP_CHECK_MSG(dev && dev->kind == json::Value::Kind::kObject,
                   "'device' object missing");
    GSNP_CHECK_MSG(json::get_u64(*dev, "instructions") > 0,
                   "device ran no instructions");
    GSNP_CHECK_MSG(json::get_u64(*dev, "kernel_launches") > 0,
                   "device launched no kernels");
    (void)json::get_u64(*dev, "h2d_bytes");
    (void)json::get_u64(*dev, "d2h_bytes");
    (void)json::get_u64(*dev, "peak_global_bytes");

    const json::Value* batcher = json::find(root, "batcher");
    GSNP_CHECK_MSG(batcher && batcher->kind == json::Value::Kind::kObject,
                   "'batcher' object missing");
    const u64 budget = json::get_u64(*batcher, "batch_bytes");
    GSNP_CHECK_MSG(budget > 0, "batcher.batch_bytes must be > 0");
    GSNP_CHECK_MSG(json::get_u64(*batcher, "batches") >
                       json::get_u64(*batcher, "windows_planned"),
                   "batcher pass did not split windows");
    const u64 planned = json::get_u64(*batcher, "planned_peak_bytes");
    GSNP_CHECK_MSG(planned > 0 && planned <= budget,
                   "batcher.planned_peak_bytes " << planned
                                                 << " outside (0, budget]");
    const u64 actual = json::get_u64(*batcher, "actual_peak_bytes");
    GSNP_CHECK_MSG(actual > 0 && actual <= budget,
                   "batcher.actual_peak_bytes " << actual
                                                << " outside (0, budget]");
    (void)json::get_u64(*batcher, "min_batch_sites");
    (void)json::get_u64(*batcher, "max_batch_sites");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_smoke: %s is invalid: %s\n",
                 path.string().c_str(), e.what());
    return 1;
  }
  std::printf("bench_smoke: %s is schema-valid\n", path.string().c_str());
  return 0;
}

json::Value load_json(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  GSNP_CHECK_MSG(in.good(), "cannot open " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const json::Value root = json::parse(buf.str());
  GSNP_CHECK_MSG(root.kind == json::Value::Kind::kObject,
                 "top level is not an object in " << path);
  GSNP_CHECK_MSG(json::get_string(root, "schema") == "gsnp-bench-pipeline",
                 "wrong schema tag in " << path);
  GSNP_CHECK_MSG(json::get_u64(root, "version") == 1,
                 "unsupported version in " << path);
  return root;
}

/// Append one line to the bench trajectory (never rewrites existing lines).
/// `sha` is passed in by scripts/bench_report — the binary itself never
/// shells out to git.
int append_history(const fs::path& hist, const fs::path& from,
                   const std::string& sha, double host_band) {
  const json::Value root = load_json(from);
  const json::Value* dev = json::find(root, "device");
  GSNP_CHECK_MSG(dev != nullptr, "'device' object missing in " << from);
  const json::Value* backends = json::find(root, "backends");
  GSNP_CHECK_MSG(backends != nullptr, "'backends' object missing in " << from);
  std::ofstream os(hist, std::ios::binary | std::ios::app);
  GSNP_CHECK_MSG(os.good(), "cannot append to " << hist);
  os << "{\"schema\": \"gsnp-bench-history\", \"version\": 1, \"git_sha\": ";
  json::write_escaped(os, sha);
  os << ", \"sites\": " << json::get_u64(root, "sites")
     << ", \"windows\": " << json::get_u64(root, "windows")
     << ", \"records\": " << json::get_u64(root, "records")
     << ", \"output_bytes\": " << json::get_u64(root, "output_bytes")
     << ", \"wall_seconds\": " << fmt(json::get_number(root, "wall_seconds"))
     << ", \"table_seconds\": " << fmt(json::get_number(root, "table_seconds"))
     << ", \"throughput_sites_per_sec\": "
     << fmt(json::get_number(root, "throughput_sites_per_sec"))
     << ", \"instructions\": " << json::get_u64(*dev, "instructions")
     << ", \"global_loads\": " << json::get_u64(*dev, "global_loads")
     << ", \"global_stores\": " << json::get_u64(*dev, "global_stores")
     << ", \"shared_loads\": " << json::get_u64(*dev, "shared_loads")
     << ", \"shared_stores\": " << json::get_u64(*dev, "shared_stores")
     << ", \"h2d_bytes\": " << json::get_u64(*dev, "h2d_bytes")
     << ", \"d2h_bytes\": " << json::get_u64(*dev, "d2h_bytes")
     << ", \"kernel_launches\": " << json::get_u64(*dev, "kernel_launches")
     << ", \"peak_global_bytes\": " << json::get_u64(*dev, "peak_global_bytes");
  const json::Value* bat = json::find(root, "batcher");
  GSNP_CHECK_MSG(bat != nullptr, "'batcher' object missing in " << from);
  os << ", \"batcher\": {\"batch_bytes\": "
     << json::get_u64(*bat, "batch_bytes")
     << ", \"batches\": " << json::get_u64(*bat, "batches")
     << ", \"planned_peak_bytes\": "
     << json::get_u64(*bat, "planned_peak_bytes")
     << ", \"actual_peak_bytes\": "
     << json::get_u64(*bat, "actual_peak_bytes") << "}";
  os << ", \"backends\": {";
  bool first = true;
  for (const char* name : {"gsnp_cpu", "gsnp_simd"}) {
    const json::Value* b = json::find(*backends, name);
    GSNP_CHECK_MSG(b != nullptr, "backend '" << name << "' missing in "
                                             << from);
    os << (first ? "" : ", ");
    first = false;
    json::write_escaped(os, name);
    os << ": {\"host_seconds\": " << fmt(json::get_number(*b, "host_seconds"))
       << ", \"likeli_seconds\": "
       << fmt(json::get_number(*b, "likeli_seconds"))
       << ", \"post_seconds\": " << fmt(json::get_number(*b, "post_seconds"))
       << ", \"simd_level\": ";
    json::write_escaped(os, json::get_string(*b, "simd_level"));
    os << "}";
  }
  os << "}, \"host_band\": " << fmt(host_band) << "}\n";
  os.flush();
  GSNP_CHECK_MSG(os.good(), "history append failed " << hist);
  std::printf("bench_smoke: appended %s (sha %s) to %s\n",
              from.string().c_str(), sha.c_str(), hist.string().c_str());
  return 0;
}

/// The regression sentinel.  Counters and dataset shape are deterministic
/// (seeded input, deterministic simulator), so they must match *exactly*;
/// modeled seconds derive linearly from counters, so they get only a float
/// round-off tolerance — never the loose band, which would let a real
/// modeled regression hide inside timing noise.  Host/wall seconds depend on
/// the machine and get the factor-of-`host_band` band (default 5x; widen on
/// loaded CI boxes with --host-band, the band used is recorded in each
/// history entry).  Every offending metric is named; all metrics are checked
/// before failing so one regression doesn't mask another.
int check(const fs::path& baseline_path, const fs::path& candidate_path,
          double host_band) {
  const json::Value base = load_json(baseline_path);
  const json::Value cand = load_json(candidate_path);

  int failures = 0;
  const auto fail = [&](const std::string& metric, const std::string& detail) {
    std::fprintf(stderr, "bench check FAILED: metric '%s': %s\n",
                 metric.c_str(), detail.c_str());
    failures++;
  };

  const auto exact_u64 = [&](const json::Value& a, const json::Value& b,
                             const std::string& metric, const char* key) {
    const u64 av = json::get_u64(a, key);
    const u64 bv = json::get_u64(b, key);
    if (av != bv) {
      std::ostringstream os;
      os << "baseline=" << av << " candidate=" << bv
         << " (deterministic counter, must match exactly)";
      fail(metric, os.str());
    }
  };
  // Modeled seconds: counters are exact, so only accumulation-order round-off
  // is tolerable.
  const auto tight = [&](double av, double bv, const std::string& metric) {
    const double tol = 1e-6 * std::max(std::abs(av), std::abs(bv)) + 1e-12;
    if (std::abs(av - bv) > tol) {
      std::ostringstream os;
      os << "baseline=" << fmt(av) << " candidate=" << fmt(bv)
         << " (modeled from deterministic counters; tolerance " << fmt(tol)
         << ")";
      fail(metric, os.str());
    }
  };
  // Host/wall timings: machine-dependent.  Accept anything within a factor
  // band or an absolute slack (tiny stages are all noise).
  const auto loose = [&](double av, double bv, const std::string& metric,
                         double factor, double slack) {
    if (std::abs(av - bv) <= slack) return;
    if (av > 0.0 && bv > 0.0 && bv <= av * factor && av <= bv * factor) return;
    std::ostringstream os;
    os << "baseline=" << fmt(av) << " candidate=" << fmt(bv)
       << " (outside x" << factor << " band and " << fmt(slack)
       << " absolute slack)";
    fail(metric, os.str());
  };

  for (const char* key :
       {"chromosomes", "sites", "windows", "records", "output_bytes"}) {
    exact_u64(base, cand, key, key);
  }

  const json::Value* bdev = json::find(base, "device");
  const json::Value* cdev = json::find(cand, "device");
  GSNP_CHECK_MSG(bdev && cdev, "'device' object missing");
  for (const char* key :
       {"instructions", "global_loads", "global_stores", "shared_loads",
        "shared_stores", "h2d_bytes", "d2h_bytes", "kernel_launches",
        "peak_global_bytes"}) {
    exact_u64(*bdev, *cdev, std::string("device.") + key, key);
  }

  // The batcher axis is fully deterministic: plan shape and the measured
  // serial-path watermark both derive from seeded input.
  const json::Value* bbat = json::find(base, "batcher");
  const json::Value* cbat = json::find(cand, "batcher");
  GSNP_CHECK_MSG(bbat && cbat, "'batcher' object missing");
  for (const char* key :
       {"batch_bytes", "batches", "windows_planned", "min_batch_sites",
        "max_batch_sites", "planned_peak_bytes", "actual_peak_bytes"}) {
    exact_u64(*bbat, *cbat, std::string("batcher.") + key, key);
  }

  const json::Value* bstages = json::find(base, "stages");
  const json::Value* cstages = json::find(cand, "stages");
  GSNP_CHECK_MSG(bstages && cstages, "'stages' object missing");
  for (const char* name : core::kComponents) {
    const json::Value* bs = json::find(*bstages, name);
    const json::Value* cs = json::find(*cstages, name);
    if (bs == nullptr || cs == nullptr) {
      fail(std::string("stages.") + name, "missing stage entry");
      continue;
    }
    tight(json::get_number(*bs, "modeled_seconds"),
          json::get_number(*cs, "modeled_seconds"),
          std::string("stages.") + name + ".modeled_seconds");
    loose(json::get_number(*bs, "host_seconds"),
          json::get_number(*cs, "host_seconds"),
          std::string("stages.") + name + ".host_seconds", host_band, 0.05);
  }

  // Per-backend real host seconds: machine-dependent, loose band only.  The
  // byte-identity behind each entry was already enforced when the candidate
  // file was produced (bench_backend refuses divergent outputs).
  const json::Value* bback = json::find(base, "backends");
  const json::Value* cback = json::find(cand, "backends");
  GSNP_CHECK_MSG(bback && cback, "'backends' object missing");
  for (const char* name : {"gsnp_cpu", "gsnp_simd"}) {
    const json::Value* bb = json::find(*bback, name);
    const json::Value* cb = json::find(*cback, name);
    if (bb == nullptr || cb == nullptr) {
      fail(std::string("backends.") + name, "missing backend entry");
      continue;
    }
    for (const char* key : {"host_seconds", "likeli_seconds", "post_seconds"})
      loose(json::get_number(*bb, key), json::get_number(*cb, key),
            std::string("backends.") + name + "." + key, host_band, 0.05);
  }

  loose(json::get_number(base, "wall_seconds"),
        json::get_number(cand, "wall_seconds"), "wall_seconds", host_band,
        0.25);
  loose(json::get_number(base, "table_seconds"),
        json::get_number(cand, "table_seconds"), "table_seconds", host_band,
        0.25);
  loose(json::get_number(base, "throughput_sites_per_sec"),
        json::get_number(cand, "throughput_sites_per_sec"),
        "throughput_sites_per_sec", host_band, 0.0);

  if (failures > 0) {
    std::fprintf(stderr, "bench check: %d metric(s) out of tolerance (%s vs %s)\n",
                 failures, baseline_path.string().c_str(),
                 candidate_path.string().c_str());
    return 1;
  }
  std::printf("bench check OK: %s matches %s "
              "(counters exact, timings within tolerance)\n",
              candidate_path.string().c_str(), baseline_path.string().c_str());
  return 0;
}

int run(const fs::path& out, const fs::path& workdir) {
  fs::create_directories(workdir);
  const Dataset ds = make_dataset(workdir);

  obs::Tracer tracer;
  core::GenomeRunConfig config;
  config.chromosomes = ds.jobs;
  config.output_dir = workdir / "out";
  config.tracer = &tracer;
  config.trace_file = workdir / "trace.json";
  config.metrics_file = workdir / "metrics.json";

  device::Device dev;
  const Timer wall;
  const core::GenomeReport report =
      core::run_genome(config, core::EngineKind::kGsnp, &dev);
  const double wall_seconds = wall.seconds();

  // Per-stage totals aggregated across chromosomes, host and modeled split.
  StopwatchSet host, modeled;
  u64 windows = 0, records = 0;
  for (const core::RunReport& r : report.per_chromosome) {
    for (const auto& [name, sec] : r.host.entries()) host.add(name, sec);
    for (const auto& [name, sec] : r.device_modeled.entries())
      modeled.add(name, sec);
    windows += r.windows;
    records += r.records;
  }
  const double table_seconds = report.total_seconds;
  const double throughput =
      table_seconds > 0.0
          ? static_cast<double>(report.total_sites) / table_seconds
          : 0.0;
  const device::DeviceCounters& c = dev.counters();

  // Per-backend real host seconds: the host sparse engines over the same
  // dataset, byte-checked against the device engine's outputs.
  std::vector<std::string> golden_bytes;
  for (const fs::path& f : report.output_files)
    golden_bytes.push_back(read_file_bytes(f));
  std::vector<BackendBench> backends;
  for (const core::EngineKind kind :
       {core::EngineKind::kGsnpCpu, core::EngineKind::kGsnpSimd})
    backends.push_back(bench_backend(kind, ds, workdir, golden_bytes, 3));

  // Depth-aware batching axis: the device engine again under a byte budget
  // small enough to split every window, on its OWN device so the main run's
  // peak_global_bytes stays comparable across history.  Outputs must stay
  // byte-identical to the fixed-window run, and the measured per-batch
  // watermark must honor the budget — both are hard failures, not metrics.
  constexpr u64 kBatchBudget = u64{1} << 20;
  core::BatchStats batcher;
  {
    core::GenomeRunConfig bconfig;
    bconfig.chromosomes = ds.jobs;
    bconfig.output_dir = workdir / "out_batched";
    bconfig.batch_bytes = kBatchBudget;
    device::Device bdev;
    const core::GenomeReport breport =
        core::run_genome(bconfig, core::EngineKind::kGsnp, &bdev);
    GSNP_CHECK_MSG(breport.output_files.size() == golden_bytes.size(),
                   "batched gsnp: chromosome count mismatch");
    for (std::size_t i = 0; i < golden_bytes.size(); ++i)
      GSNP_CHECK_MSG(
          read_file_bytes(breport.output_files[i]) == golden_bytes[i],
          "batched gsnp: output for chromosome "
              << i << " is not byte-identical to the fixed-window run");
    for (const core::RunReport& r : breport.per_chromosome) {
      batcher.budget_bytes = r.batch.budget_bytes;
      batcher.batches += r.batch.batches;
      batcher.windows_planned += r.batch.windows_planned;
      if (r.batch.min_batch_sites != 0 &&
          (batcher.min_batch_sites == 0 ||
           r.batch.min_batch_sites < batcher.min_batch_sites))
        batcher.min_batch_sites = r.batch.min_batch_sites;
      batcher.max_batch_sites =
          std::max(batcher.max_batch_sites, r.batch.max_batch_sites);
      batcher.planned_peak_bytes =
          std::max(batcher.planned_peak_bytes, r.batch.planned_peak_bytes);
      batcher.actual_peak_bytes =
          std::max(batcher.actual_peak_bytes, r.batch.actual_peak_bytes);
    }
    GSNP_CHECK_MSG(batcher.actual_peak_bytes <= kBatchBudget,
                   "batched gsnp exceeded its byte budget: measured "
                       << batcher.actual_peak_bytes << " > " << kBatchBudget);
  }

  const fs::path tmp = out.string() + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    GSNP_CHECK_MSG(os.good(), "cannot write " << tmp);
    os << "{\n"
       << "  \"schema\": \"gsnp-bench-pipeline\",\n"
       << "  \"version\": 1,\n"
       << "  \"engine\": \"gsnp\",\n"
       << "  \"chromosomes\": " << report.statuses.size() << ",\n"
       << "  \"sites\": " << report.total_sites << ",\n"
       << "  \"windows\": " << windows << ",\n"
       << "  \"records\": " << records << ",\n"
       << "  \"output_bytes\": " << report.total_output_bytes << ",\n"
       << "  \"wall_seconds\": " << fmt(wall_seconds) << ",\n"
       << "  \"table_seconds\": " << fmt(table_seconds) << ",\n"
       << "  \"throughput_sites_per_sec\": " << fmt(throughput) << ",\n"
       << "  \"stages\": {";
    bool first = true;
    for (const char* name : core::kComponents) {
      const double h = host.get(name);
      const double m = modeled.get(name);
      os << (first ? "\n    " : ",\n    ");
      first = false;
      json::write_escaped(os, name);
      os << ": {\"seconds\": " << fmt(h + m) << ", \"host_seconds\": " << fmt(h)
         << ", \"modeled_seconds\": " << fmt(m) << "}";
    }
    os << "\n  },\n"
       << "  \"backends\": {";
    first = true;
    for (const BackendBench& b : backends) {
      os << (first ? "\n    " : ",\n    ");
      first = false;
      json::write_escaped(os, b.id);
      os << ": {\"host_seconds\": " << fmt(b.host_seconds)
         << ", \"likeli_seconds\": " << fmt(b.likeli_seconds)
         << ", \"post_seconds\": " << fmt(b.post_seconds)
         << ", \"simd_level\": ";
      json::write_escaped(os, b.simd_level);
      os << "}";
    }
    os << "\n  },\n"
       << "  \"device\": {"
       << "\"instructions\": " << c.instructions
       << ", \"global_loads\": " << c.global_loads()
       << ", \"global_stores\": " << c.global_stores()
       << ", \"shared_loads\": " << c.shared_loads
       << ", \"shared_stores\": " << c.shared_stores
       << ", \"h2d_bytes\": " << c.h2d_bytes
       << ", \"d2h_bytes\": " << c.d2h_bytes
       << ", \"kernel_launches\": " << c.kernel_launches
       << ", \"peak_global_bytes\": " << dev.peak_allocated_bytes() << "},\n"
       << "  \"batcher\": {"
       << "\"batch_bytes\": " << batcher.budget_bytes
       << ", \"batches\": " << batcher.batches
       << ", \"windows_planned\": " << batcher.windows_planned
       << ", \"min_batch_sites\": " << batcher.min_batch_sites
       << ", \"max_batch_sites\": " << batcher.max_batch_sites
       << ", \"planned_peak_bytes\": " << batcher.planned_peak_bytes
       << ", \"actual_peak_bytes\": " << batcher.actual_peak_bytes << "}\n"
       << "}\n";
    os.flush();
    GSNP_CHECK_MSG(os.good(), "write failed " << tmp);
  }
  fs::rename(tmp, out);

  std::printf("%-8s %10s %10s %10s\n", "stage", "sec", "host", "modeled");
  for (const char* name : core::kComponents)
    std::printf("%-8s %10.4f %10.4f %10.4f\n", name,
                host.get(name) + modeled.get(name), host.get(name),
                modeled.get(name));
  std::printf("%-8s %10.4f   (%llu sites, %.0f sites/s, %zu spans)\n", "total",
              table_seconds, static_cast<unsigned long long>(report.total_sites),
              throughput, tracer.spans().size());
  std::printf("%-10s %10s %10s %10s  %s\n", "backend", "host", "likeli",
              "post", "simd");
  for (const BackendBench& b : backends)
    std::printf("%-10s %10.4f %10.4f %10.4f  %s\n", b.id.c_str(),
                b.host_seconds, b.likeli_seconds, b.post_seconds,
                b.simd_level.c_str());
  std::printf("batcher  %llu batches over %llu windows (budget %llu B, "
              "planned peak %llu, actual peak %llu)\n",
              static_cast<unsigned long long>(batcher.batches),
              static_cast<unsigned long long>(batcher.windows_planned),
              static_cast<unsigned long long>(batcher.budget_bytes),
              static_cast<unsigned long long>(batcher.planned_peak_bytes),
              static_cast<unsigned long long>(batcher.actual_peak_bytes));
  std::printf("wrote %s\n", out.string().c_str());

  // A baseline nobody can load is worse than none: self-validate.
  return validate(out);
}

}  // namespace

int main(int argc, char** argv) {
  fs::path out = "BENCH_pipeline.json";
  fs::path workdir = fs::temp_directory_path() / "gsnp_bench_smoke";
  fs::path validate_path, check_baseline, check_candidate;
  fs::path history_path, history_from;
  std::string sha = "unknown";
  double host_band = 5.0;  // host/wall timing band; see check()
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_smoke: %s needs a value\n", flag);
        std::exit(2);
      }
      return fs::path(argv[++i]);
    };
    if (std::strcmp(argv[i], "--out") == 0) out = need_value("--out");
    else if (std::strcmp(argv[i], "--workdir") == 0)
      workdir = need_value("--workdir");
    else if (std::strcmp(argv[i], "--validate") == 0)
      validate_path = need_value("--validate");
    else if (std::strcmp(argv[i], "--check") == 0)
      check_baseline = need_value("--check");
    else if (std::strcmp(argv[i], "--candidate") == 0)
      check_candidate = need_value("--candidate");
    else if (std::strcmp(argv[i], "--history") == 0)
      history_path = need_value("--history");
    else if (std::strcmp(argv[i], "--append-history") == 0)
      history_path = need_value("--append-history");
    else if (std::strcmp(argv[i], "--from") == 0)
      history_from = need_value("--from");
    else if (std::strcmp(argv[i], "--sha") == 0)
      sha = need_value("--sha").string();
    else if (std::strcmp(argv[i], "--host-band") == 0) {
      host_band = std::stod(need_value("--host-band").string());
      if (host_band < 1.0) {
        std::fprintf(stderr, "bench_smoke: --host-band must be >= 1\n");
        return 2;
      }
    }
    else {
      std::fprintf(stderr,
                   "usage: bench_smoke [--out FILE] [--workdir DIR] "
                   "[--validate FILE]\n"
                   "       bench_smoke --check BASELINE --candidate FILE "
                   "[--history FILE --sha SHA]\n"
                   "                   [--host-band X]   "
                   "(host/wall timing band, default 5)\n"
                   "       bench_smoke --append-history FILE --from FILE "
                   "--sha SHA\n");
      return 2;
    }
  }
  try {
    if (!validate_path.empty()) return validate(validate_path);
    if (!check_baseline.empty()) {
      if (check_candidate.empty()) {
        std::fprintf(stderr, "bench_smoke: --check needs --candidate FILE\n");
        return 2;
      }
      const int rc = check(check_baseline, check_candidate, host_band);
      // Only accepted runs enter the trajectory.
      if (rc == 0 && !history_path.empty())
        return append_history(history_path, check_candidate, sha, host_band);
      return rc;
    }
    if (!history_path.empty()) {
      if (history_from.empty()) {
        std::fprintf(stderr,
                     "bench_smoke: --append-history needs --from FILE\n");
        return 2;
      }
      return append_history(history_path, history_from, sha, host_band);
    }
    return run(out, workdir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_smoke: %s\n", e.what());
    return 1;
  }
}
