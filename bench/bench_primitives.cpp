// Google-benchmark microbenchmarks for the performance-critical primitives:
// column codecs, bit I/O, the sorting strategies, and the likelihood inner
// loops.  These are not paper figures; they guard against performance
// regressions in the building blocks the figures depend on.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "src/common/bitio.hpp"
#include "src/common/rng.hpp"
#include "src/compress/codecs.hpp"
#include "src/compress/zlibwrap.hpp"
#include "src/core/base_word.hpp"
#include "src/core/likelihood.hpp"
#include "src/core/new_pmatrix.hpp"
#include "src/core/pmatrix.hpp"
#include "src/core/posterior.hpp"
#include "src/core/ranksum.hpp"
#include "src/reads/sam.hpp"
#include "src/sortnet/multipass.hpp"

namespace {

using namespace gsnp;

std::vector<u32> runny_column(std::size_t n) {
  Rng rng(7);
  std::vector<u32> column;
  while (column.size() < n) {
    const u32 v = static_cast<u32>(rng.uniform(60));
    column.insert(column.end(), 1 + rng.uniform(20), v);
  }
  column.resize(n);
  return column;
}

void BM_EncodeRleDict(benchmark::State& state) {
  const auto column = runny_column(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<u8> out;
    compress::encode_rle_dict(column, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeRleDict)->Arg(1 << 12)->Arg(1 << 16);

void BM_DecodeRleDict(benchmark::State& state) {
  const auto column = runny_column(static_cast<std::size_t>(state.range(0)));
  std::vector<u8> encoded;
  compress::encode_rle_dict(column, encoded);
  for (auto _ : state) {
    std::size_t pos = 0;
    benchmark::DoNotOptimize(compress::decode_rle_dict(encoded, pos));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeRleDict)->Arg(1 << 12)->Arg(1 << 16);

void BM_ZlibCompress(benchmark::State& state) {
  const auto column = runny_column(static_cast<std::size_t>(state.range(0)));
  const std::span<const u8> bytes(
      reinterpret_cast<const u8*>(column.data()), column.size() * 4);
  for (auto _ : state)
    benchmark::DoNotOptimize(compress::zlib_compress(bytes));
  state.SetBytesProcessed(state.iterations() * bytes.size());
}
BENCHMARK(BM_ZlibCompress)->Arg(1 << 16);

void BM_PackBases(benchmark::State& state) {
  Rng rng(3);
  std::vector<u8> bases(static_cast<std::size_t>(state.range(0)));
  for (auto& b : bases) b = static_cast<u8>(rng.uniform(4));
  for (auto _ : state) {
    std::vector<u8> out;
    compress::pack_bases(bases, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackBases)->Arg(1 << 16);

void BM_BitWriter(benchmark::State& state) {
  Rng rng(5);
  std::vector<u32> values(4096);
  for (auto& v : values) v = static_cast<u32>(rng.uniform(128));
  for (auto _ : state) {
    BitWriter bw;
    for (const u32 v : values) bw.write(v, 7);
    benchmark::DoNotOptimize(bw.finish());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_BitWriter);

void BM_CpuBatchSort(benchmark::State& state) {
  const auto original = sortnet::random_var_arrays(
      static_cast<u64>(state.range(0)), 11.0, 120, 1u << 18, 9);
  for (auto _ : state) {
    sortnet::VarArrays va = original;
    sortnet::sort_cpu_batch(va);
    benchmark::DoNotOptimize(va.values.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(original.total_elements()));
}
BENCHMARK(BM_CpuBatchSort)->Arg(10'000);

void BM_LikelihoodSparseSite(benchmark::State& state) {
  const core::PMatrix pm = core::finalize_p_matrix(core::PMatrixCounter{});
  const core::NewPMatrix npm(pm);
  Rng rng(11);
  std::vector<u32> words(static_cast<std::size_t>(state.range(0)));
  for (auto& w : words) {
    AlignedBase ab;
    ab.base = static_cast<u8>(rng.uniform(4));
    ab.quality = static_cast<u8>(rng.uniform(64));
    ab.coord = static_cast<u16>(rng.uniform(100));
    ab.strand = static_cast<Strand>(rng.uniform(2));
    w = core::base_word_pack(ab);
  }
  std::sort(words.begin(), words.end());
  for (auto _ : state)
    benchmark::DoNotOptimize(core::likelihood_sparse_site(words, npm));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LikelihoodSparseSite)->Arg(10)->Arg(30)->Arg(100);

void BM_BaseWordPackUnpack(benchmark::State& state) {
  Rng rng(13);
  std::vector<AlignedBase> obs(1024);
  for (auto& ab : obs) {
    ab.base = static_cast<u8>(rng.uniform(4));
    ab.quality = static_cast<u8>(rng.uniform(64));
    ab.coord = static_cast<u16>(rng.uniform(256));
    ab.strand = static_cast<Strand>(rng.uniform(2));
  }
  for (auto _ : state) {
    u64 sum = 0;
    for (const auto& ab : obs)
      sum += core::base_word_unpack(core::base_word_pack(ab)).coord;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_BaseWordPackUnpack);

void BM_SamParse(benchmark::State& state) {
  gsnp::reads::AlignmentRecord rec;
  rec.read_id = "r1";
  rec.seq.assign(100, 'A');
  rec.qual.assign(100, 'I');
  rec.length = 100;
  rec.chr_name = "chr1";
  rec.pos = 12345;
  const std::string line = gsnp::reads::format_sam_record(rec);
  for (auto _ : state)
    benchmark::DoNotOptimize(gsnp::reads::parse_sam_record(line));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamParse);

void BM_SoapParse(benchmark::State& state) {
  gsnp::reads::AlignmentRecord rec;
  rec.read_id = "r1";
  rec.seq.assign(100, 'A');
  rec.qual.assign(100, 'I');
  rec.length = 100;
  rec.chr_name = "chr1";
  rec.pos = 12345;
  const std::string line = gsnp::reads::format_alignment(rec);
  for (auto _ : state)
    benchmark::DoNotOptimize(gsnp::reads::parse_alignment(line));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoapParse);

void BM_RankSum(benchmark::State& state) {
  Rng rng(3);
  std::vector<u8> a(static_cast<std::size_t>(state.range(0)));
  std::vector<u8> b(static_cast<std::size_t>(state.range(0)));
  for (auto& v : a) v = static_cast<u8>(rng.uniform(64));
  for (auto& v : b) v = static_cast<u8>(rng.uniform(64));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::rank_sum_p(a, b));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankSum)->Arg(8)->Arg(32);

void BM_Varint(benchmark::State& state) {
  Rng rng(5);
  std::vector<u64> values(4096);
  for (auto& v : values) v = rng() >> static_cast<int>(rng.uniform(56));
  for (auto _ : state) {
    std::vector<u8> out;
    for (const u64 v : values) varint_append(out, v);
    std::size_t pos = 0;
    u64 sum = 0;
    for (std::size_t i = 0; i < values.size(); ++i)
      sum += varint_read(out, pos);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Varint);

void BM_SelectGenotype(benchmark::State& state) {
  Rng rng(7);
  core::GenotypePriors prior;
  core::TypeLikely tl;
  for (auto& v : prior) v = -10.0 * rng.uniform_double();
  for (auto& v : tl) v = -40.0 * rng.uniform_double();
  for (auto _ : state)
    benchmark::DoNotOptimize(core::select_genotype(prior, tl));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectGenotype);

}  // namespace

BENCHMARK_MAIN();
