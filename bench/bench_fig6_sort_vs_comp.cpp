// Reproduces paper Fig 6: elapsed time of the two steps of the sparse
// likelihood calculation — likelihood_sort and likelihood_comp — on the CPU
// (measured) and on the device (modeled from counters).
//
// Expected shape: both steps accelerate on the GPU, with a smaller speedup
// for sorting (paper: ~22x sort, ~40x comp — bitonic has a higher complexity
// than the CPU quicksort).

#include <cstdio>

#include "bench_util.hpp"
#include "src/common/timer.hpp"
#include "src/core/kernels.hpp"
#include "src/core/likelihood.hpp"
#include "src/core/window.hpp"
#include "src/device/perf_model.hpp"
#include "src/reads/alignment.hpp"
#include "src/sortnet/multipass.hpp"

using namespace gsnp;
using namespace gsnp::bench;

int main(int argc, char** argv) {
  const u64 chr1_sites = flag_u64(argc, argv, "--chr1-sites", 120'000);
  print_banner("bench_fig6_sort_vs_comp",
               "Fig 6: likelihood_sort vs likelihood_comp, CPU vs GPU",
               "GPU seconds are modeled M2050 time from measured operation "
               "counts.");
  const fs::path dir = bench_dir("fig6");
  const device::PerfModel model;

  std::printf("%-6s %14s %14s %14s %14s %10s %10s\n", "", "sort_cpu(s)",
              "comp_cpu(s)", "sort_gpu(s)", "comp_gpu(s)", "sort_spd",
              "comp_spd");

  for (const auto& spec : {ch1_spec(chr1_sites), ch21_spec(chr1_sites)}) {
    const Dataset data = make_dataset(spec, dir);

    // Tables (shared by CPU and device paths).
    core::PMatrixCounter counter;
    {
      reads::AlignmentReader reader(data.align_file);
      while (auto rec = reader.next()) {
        if (rec->hit_count != 1) continue;
        for (u64 p = rec->pos; p < rec->pos + rec->length; ++p) {
          const u8 r = data.ref.base(p);
          if (r >= kNumBases) continue;
          reads::SiteObservation so;
          if (reads::observe_site(*rec, p, so))
            counter.add(so.quality, so.coord, r, so.base);
        }
      }
    }
    const core::PMatrix pm = core::finalize_p_matrix(counter);
    const core::NewPMatrix npm(pm);
    device::Device dev;
    const core::DeviceScoreTables tables(dev, pm, npm);

    double sort_cpu = 0, comp_cpu = 0, sort_gpu = 0, comp_gpu = 0;

    auto reader = std::make_shared<reads::AlignmentReader>(data.align_file);
    core::WindowLoader loader([reader] { return reader->next(); },
                              data.ref.size(), 65'536);
    core::WindowRecords win;
    core::WindowObs obs;
    std::vector<core::SiteStats> stats;
    core::BaseWordWindow sparse(0);
    while (loader.next(win)) {
      core::count_window(win, obs, stats, nullptr, &sparse);

      {  // CPU path.
        core::BaseWordWindow copy = sparse;
        Timer t;
        core::likelihood_sort_cpu(copy);
        sort_cpu += t.seconds();
        t.reset();
        for (u32 s = 0; s < win.size; ++s)
          (void)core::likelihood_sparse_site(copy.site(s), npm);
        comp_cpu += t.seconds();
      }
      {  // Device path, modeled.
        core::BaseWordWindow copy = sparse;
        auto before = dev.counters();
        sortnet::VarArrays va;
        va.values = std::move(copy.words);
        va.offsets = std::move(copy.offsets);
        sortnet::sort_device_multipass(dev, va);
        copy.words = std::move(va.values);
        copy.offsets = std::move(va.offsets);
        sort_gpu +=
            model.seconds(device::counters_delta(before, dev.counters()));
        before = dev.counters();
        (void)core::device_likelihood_sparse(dev, copy, tables);
        comp_gpu +=
            model.seconds(device::counters_delta(before, dev.counters()));
      }
    }

    std::printf("%-6s %14.4f %14.4f %14.4f %14.4f %9.1fx %9.1fx\n",
                spec.name.c_str(), sort_cpu, comp_cpu, sort_gpu, comp_gpu,
                sort_cpu / sort_gpu, comp_cpu / comp_gpu);
  }
  print_paper_note("sort speedup ~22x, comp speedup ~40x (bitonic's higher "
                   "complexity makes the sort speedup smaller)");
  print_paper_note("note: the paper's CPU paid ~250ns/word (80 MB score "
                   "table, DRAM-miss per lookup on a 2009 Xeon); our 5 MB "
                   "table is L3-resident, so the measured CPU comp here is "
                   "already near the modeled GPU's worst-case-random-"
                   "bandwidth time — the comp column's absolute speedup does "
                   "not transfer at this scale (see EXPERIMENTS.md)");
  return 0;
}
