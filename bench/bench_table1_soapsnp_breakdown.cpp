// Reproduces paper Table I: time breakdown (sec) by components in SOAPsnp
// for the Ch.1 and Ch.21 datasets (scaled analogs; --chr1-sites to resize).
//
// Expected shape: likelihood dominates (~56% in the paper), recycle second,
// output third.

#include <cstdio>

#include "bench_util.hpp"

using namespace gsnp;
using namespace gsnp::bench;

namespace {

void print_row(const std::string& name, const core::RunReport& r) {
  std::printf("%-6s", name.c_str());
  for (const char* c : core::kComponents) std::printf(" %8.2f", r.component(c));
  std::printf(" %8.2f\n", r.total());
}

}  // namespace

int main(int argc, char** argv) {
  const u64 chr1_sites = flag_u64(argc, argv, "--chr1-sites", 100'000);
  print_banner("bench_table1_soapsnp_breakdown",
               "Table I: time breakdown (sec) by components in SOAPsnp",
               "Scaled analogs of Ch.1/Ch.21 (paper: 247M / 47M sites; here " +
                   std::to_string(chr1_sites) + " / " +
                   std::to_string(static_cast<u64>(kCh21Ratio * chr1_sites)) +
                   ").");

  const fs::path dir = bench_dir("table1");

  std::printf("%-6s %8s %8s %8s %8s %8s %8s %8s %8s\n", "", "cal_p", "read",
              "count", "likeli", "post", "output", "recycle", "Total");
  for (const auto& spec : {ch1_spec(chr1_sites), ch21_spec(chr1_sites)}) {
    const Dataset data = make_dataset(spec, dir);
    auto config = config_for(data, dir, "soapsnp");
    config.window_size = 4'000;  // the paper's SOAPsnp default
    const core::RunReport report = core::run_soapsnp(config);
    print_row(spec.name, report);

    const double likeli_share = report.component("likeli") / report.total();
    std::printf("  -> likelihood share of total: %.0f%%  (paper: ~56%%); "
                "recycle is #%d\n",
                100.0 * likeli_share,
                report.component("recycle") > report.component("output") ? 2
                                                                         : 3);
  }
  print_paper_note("Ch.1: 258 101 376 12267 113 550 8214 | total 21879;  "
                   "Ch.21: 31 12 55 1854 17 103 1603 | total 3675");
  return 0;
}
