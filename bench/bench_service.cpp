// bench_service — the gsnpd chaos harness (plain harness, like bench_smoke /
// bench_overlap: no google-benchmark dependency, deterministic,
// self-checking).  DESIGN.md "Service".
//
// Drives N concurrent jobs (default 10) through a seeded fault schedule
// (transient launch faults, transient transfer corruption, one wedged-device
// job that must degrade to the CPU engine) plus a crash-point schedule that
// kills the daemon mid-run at a post_publish durability edge, then restarts
// it and recovers the spool.  Asserts, for every admitted job:
//
//   * terminal state kDone after recovery — resumed exactly once,
//   * output files byte-identical to a serial core::run_genome of the same
//     spec (manifest digests equal for non-degraded jobs; the degraded job
//     matches byte-for-byte and CRC-for-CRC, its digest legitimately differs
//     only in the engine/degraded fields),
//   * over-quota and over-capacity submissions rejected with typed
//     ServiceErrors instead of hanging,
//
// and reports p50/p99 job completion latency (clean concurrent phase) and
// the shed rate of the backpressure probe.
//
//   bench_service [--workdir DIR] [--jobs N] [--seed S] [--length N]
//                 [--fs-faults]
//
// --fs-faults adds the storage-chaos phase (FORMATS.md §13): a round of
// transient seeded container-write tears that the retry envelope must absorb
// with byte-identical outputs and a clean post-restart fsck, then a
// persistent journal ENOSPC that must reject submissions typed
// (storage_failure) and admit the identical spec once the disk heals.
//
// Exit codes: 0 ok, 1 a check failed, 2 bad usage.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/fs_fault.hpp"
#include "src/common/rng.hpp"
#include "src/core/genome_pipeline.hpp"
#include "src/core/run_manifest.hpp"
#include "src/obs/eventlog.hpp"
#include "src/obs/histogram.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"
#include "src/service/daemon.hpp"
#include "src/service/fsck.hpp"
#include "src/service/protocol.hpp"

namespace fs = std::filesystem;
using namespace gsnp;
using namespace std::chrono_literals;

namespace {

int g_failures = 0;

#define BENCH_CHECK(cond, ...)                      \
  do {                                              \
    if (!(cond)) {                                  \
      std::fprintf(stderr, "FAIL: " __VA_ARGS__);   \
      std::fprintf(stderr, "\n");                   \
      ++g_failures;                                 \
    }                                               \
  } while (0)

std::string read_file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  GSNP_CHECK_MSG(in.good(), "cannot open " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

u64 fnv1a(std::string_view s) {
  u64 h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= 1099511628211ull;
  }
  return h;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(values.size())));
  return values[std::min(values.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// One synthesized chromosome dataset on disk.
struct Dataset {
  std::string name;
  fs::path fasta;
  fs::path soap;
};

service::ErrorCode expect_rejected(service::Daemon& daemon,
                                   service::JobSpec spec, const char* what) {
  try {
    daemon.submit(std::move(spec));
  } catch (const service::ServiceError& e) {
    return e.code();
  }
  std::fprintf(stderr, "FAIL: %s was admitted instead of rejected\n", what);
  ++g_failures;
  return service::ErrorCode::kInternal;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path workdir = fs::temp_directory_path() / "gsnp_bench_service";
  std::size_t jobs = 10;
  u64 seed = 1;
  u64 length = 1'000;
  bool fs_faults = false;
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_service: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--workdir") == 0)
      workdir = need_value("--workdir");
    else if (std::strcmp(argv[i], "--jobs") == 0)
      jobs = std::stoull(need_value("--jobs"));
    else if (std::strcmp(argv[i], "--seed") == 0)
      seed = std::stoull(need_value("--seed"));
    else if (std::strcmp(argv[i], "--length") == 0)
      length = std::stoull(need_value("--length"));
    else if (std::strcmp(argv[i], "--fs-faults") == 0)
      fs_faults = true;
    else {
      std::fprintf(stderr,
                   "usage: bench_service [--workdir DIR] [--jobs N] "
                   "[--seed S] [--length N] [--fs-faults]\n");
      return 2;
    }
  }
  if (jobs < 8) {
    std::fprintf(stderr,
                 "bench_service: the chaos contract needs >= 8 concurrent "
                 "jobs (got %zu)\n",
                 jobs);
    return 2;
  }

  try {
    fs::remove_all(workdir);
    fs::create_directories(workdir);

    // ---- synthesize a pool of chromosome datasets -------------------------------
    constexpr std::size_t kPool = 6;
    std::vector<Dataset> pool;
    for (std::size_t c = 0; c < kPool; ++c) {
      Dataset d;
      d.name = "chr" + std::to_string(c + 1);
      genome::GenomeSpec gspec;
      gspec.name = d.name;
      gspec.length = length + 200 * c;
      gspec.seed = seed * 100 + c;
      const genome::Reference ref = genome::generate_reference(gspec);
      d.fasta = workdir / (d.name + ".fa");
      genome::write_fasta_file(d.fasta, {ref});
      const genome::Diploid individual(ref, {});
      reads::ReadSimSpec rspec;
      rspec.depth = 4.0;
      rspec.seed = seed * 200 + c;
      d.soap = workdir / (d.name + ".soap");
      reads::write_alignment_file(d.soap,
                                  reads::simulate_reads(individual, rspec));
      pool.push_back(std::move(d));
    }

    // ---- seeded job mix: 2-3 chromosomes each from the pool ---------------------
    std::vector<service::JobSpec> specs;
    for (std::size_t i = 0; i < jobs; ++i) {
      Rng rng(seed * 1'000 + i);
      service::JobSpec spec;
      spec.job_id = "chaos-" + std::to_string(i);
      spec.engine = "gsnp";
      spec.window_size = 512;
      const std::size_t count = 2 + rng.uniform(2);  // 2 or 3
      std::size_t at = rng.uniform(kPool);
      for (std::size_t k = 0; k < count; ++k) {
        const Dataset& d = pool[(at + k) % kPool];  // distinct names per job
        service::ChromosomeSpec cs;
        cs.name = d.name;
        cs.alignment_file = d.soap.string();
        cs.reference_file = d.fasta.string();
        spec.chromosomes.push_back(cs);
      }
      specs.push_back(std::move(spec));
    }

    // Schedule landmarks: one wedged-device job (degrades to CPU, byte-exact)
    // and one crash point mid-schedule.
    const std::string wedge_job = "chaos-1";
    const std::string wedge_chrom = specs[1].chromosomes.back().name;
    const std::string crash_job = "chaos-" + std::to_string(jobs / 2);
    const std::string crash_chrom = specs[jobs / 2].chromosomes.front().name;

    // Seeded fault arming, deterministic per (job, chromosome) and relative
    // to the worker device's live operation counters — independent of
    // scheduling order.
    const auto fault_arm = [&](device::Device& dev, const std::string& job_id,
                               const std::string& chromosome) {
      device::FaultPlan plan;  // empty plan clears any wedge left on the card
      if (job_id == wedge_job && chromosome == wedge_chrom) {
        plan.fail_alloc_at = static_cast<i64>(dev.alloc_count());
        plan.fault_count = -1;  // wedged for every retry -> CPU fallback
      } else {
        const u64 h = fnv1a(job_id + ":" + chromosome) ^ seed;
        if (h % 3 == 0) {
          plan.fail_launch_at = static_cast<i64>(dev.launch_count());
          plan.fault_count = 1;  // one failed launch, clean on retry
        } else if (h % 5 == 1) {
          plan.corrupt_h2d_at = static_cast<i64>(dev.h2d_count());
          plan.fault_count = 1;  // one glitched DMA, caught by CRC, retried
        }
      }
      dev.set_fault_plan(plan);
    };

    const auto daemon_config = [&](const std::string& spool) {
      service::DaemonConfig config;
      config.spool_dir = workdir / spool;
      config.workers = 4;
      config.queue_capacity = jobs + 4;
      config.tenant_quota = jobs + 4;
      config.retry.max_attempts = 3;
      config.retry.backoff_seconds = 0.001;
      config.retry.jitter_fraction = 0.5;
      config.retry.jitter_seed = seed;
      config.fault_arm = fault_arm;
      return config;
    };

    // ---- serial oracle: one core::run_genome per job spec -----------------------
    std::map<std::string, std::string> serial_digest;
    std::map<std::string, core::RunManifest> serial_manifest;
    std::map<std::string, fs::path> serial_dir;
    for (const service::JobSpec& spec : specs) {
      std::vector<genome::Reference> refs;
      refs.reserve(spec.chromosomes.size());
      core::GenomeRunConfig cfg;
      cfg.output_dir = workdir / "serial" / spec.job_id;
      cfg.window_size = spec.window_size;
      for (const service::ChromosomeSpec& cs : spec.chromosomes) {
        refs.push_back(std::move(genome::read_fasta_file(cs.reference_file).at(0)));
        core::ChromosomeJob job;
        job.name = cs.name;
        job.alignment_file = cs.alignment_file;
        job.reference = &refs.back();
        cfg.chromosomes.push_back(job);
      }
      device::Device dev;
      const core::GenomeReport report =
          core::run_genome(cfg, core::EngineKind::kGsnp, &dev);
      const core::RunManifest m = core::read_run_manifest(report.manifest_file);
      serial_digest[spec.job_id] = core::manifest_digest(m);
      serial_manifest[spec.job_id] = m;
      serial_dir[spec.job_id] = cfg.output_dir;
    }
    std::printf("bench_service: %zu jobs, pool of %zu chromosomes, seed %llu\n",
                jobs, kPool, static_cast<unsigned long long>(seed));

    // ---- phase A: chaos run with a mid-run daemon kill + restart ----------------
    std::atomic<service::Daemon*> live{nullptr};
    std::atomic<bool> crashed{false};
    std::size_t resumed = 0;
    {
      service::DaemonConfig config = daemon_config("spool");
      config.checkpoint_hook = [&](std::string_view point,
                                   const std::string& job_id,
                                   const std::string& chromosome) {
        if (point == "post_publish" && job_id == crash_job &&
            chromosome == crash_chrom && !crashed.exchange(true)) {
          live.load()->simulate_crash();
          throw Error("bench_service: injected crash at post_publish");
        }
      };
      service::Daemon daemon(config);
      live.store(&daemon);
      for (const service::JobSpec& spec : specs) daemon.submit(spec);
      daemon.wait_idle();  // returns the moment the crash flag goes up
      BENCH_CHECK(crashed.load(), "the crash point never fired");
      // Daemon dies here with unfinished jobs parked in the spool.
    }
    {
      service::Daemon daemon(daemon_config("spool"));
      resumed = daemon.recover();
      BENCH_CHECK(resumed >= 1,
                  "mid-run crash left nothing to resume (resumed=%zu)",
                  resumed);
      for (const service::JobSpec& spec : specs) {
        if (!daemon.wait_job(spec.job_id, 300.0)) {
          BENCH_CHECK(false, "job %s hung after recovery",
                      spec.job_id.c_str());
          continue;
        }
        const service::JobStatus status = daemon.status(spec.job_id);
        BENCH_CHECK(status.state == service::JobState::kDone,
                    "job %s ended %s (%s), want done", spec.job_id.c_str(),
                    service::job_state_name(status.state),
                    status.error.c_str());
        if (status.state != service::JobState::kDone) continue;

        // Byte identity against the serial oracle, chromosome by chromosome.
        const core::RunManifest chaos =
            core::read_run_manifest(workdir / "spool" / "jobs" / spec.job_id /
                                    "manifest.json");
        const core::RunManifest& serial = serial_manifest[spec.job_id];
        BENCH_CHECK(chaos.chromosomes.size() == serial.chromosomes.size(),
                    "job %s manifest has %zu chromosomes, serial %zu",
                    spec.job_id.c_str(), chaos.chromosomes.size(),
                    serial.chromosomes.size());
        for (const core::ManifestEntry& entry : serial.chromosomes) {
          const core::ManifestEntry* got = chaos.find(entry.name);
          if (got == nullptr) {
            BENCH_CHECK(false, "job %s missing chromosome %s",
                        spec.job_id.c_str(), entry.name.c_str());
            continue;
          }
          BENCH_CHECK(got->output_crc32 == entry.output_crc32 &&
                          got->output_bytes == entry.output_bytes,
                      "job %s chromosome %s output differs from serial",
                      spec.job_id.c_str(), entry.name.c_str());
          const std::string serial_bytes =
              read_file_bytes(serial_dir[spec.job_id] / entry.output);
          const std::string chaos_bytes =
              read_file_bytes(status.output_dir / got->output);
          BENCH_CHECK(serial_bytes == chaos_bytes,
                      "job %s chromosome %s bytes differ from serial",
                      spec.job_id.c_str(), entry.name.c_str());
        }
        if (spec.job_id == wedge_job) {
          // The wedged job degraded: digest differs only in engine fields.
          const core::ManifestEntry* got = chaos.find(wedge_chrom);
          BENCH_CHECK(got != nullptr && got->degraded &&
                          got->engine == "gsnp_cpu",
                      "wedged job %s did not degrade on %s",
                      wedge_job.c_str(), wedge_chrom.c_str());
        } else {
          BENCH_CHECK(status.manifest_digest == serial_digest[spec.job_id],
                      "job %s manifest digest differs from serial run",
                      spec.job_id.c_str());
        }
      }
      std::printf(
          "  chaos: crash at %s/%s post_publish; %zu job(s) resumed; all %zu "
          "jobs done, outputs byte-identical to serial\n",
          crash_job.c_str(), crash_chrom.c_str(), resumed, jobs);

      // The event log spans both daemon incarnations (append-only, same
      // spool).  Every job must show exactly one submitted and exactly one
      // published record — the crash/recover cycle must not double-publish —
      // and the resumed jobs must each carry a recovered marker.
      const std::vector<obs::JobEvent> events =
          obs::read_event_log(workdir / "spool" / "events.jsonl");
      BENCH_CHECK(!events.empty(), "chaos spool has no event log");
      std::map<std::string, std::size_t> submitted_count, published_count,
          recovered_count;
      for (const obs::JobEvent& ev : events) {
        if (ev.event == "submitted") ++submitted_count[ev.job_id];
        if (ev.event == "published") ++published_count[ev.job_id];
        if (ev.event == "recovered") ++recovered_count[ev.job_id];
      }
      std::size_t total_recovered = 0;
      for (const service::JobSpec& spec : specs) {
        BENCH_CHECK(submitted_count[spec.job_id] == 1,
                    "job %s logged %zu submitted event(s), want 1",
                    spec.job_id.c_str(), submitted_count[spec.job_id]);
        BENCH_CHECK(published_count[spec.job_id] == 1,
                    "job %s logged %zu published event(s), want exactly 1 "
                    "across the crash/recover cycle",
                    spec.job_id.c_str(), published_count[spec.job_id]);
        total_recovered += recovered_count[spec.job_id];
      }
      BENCH_CHECK(total_recovered == resumed,
                  "event log shows %zu recovered job(s), daemon resumed %zu",
                  total_recovered, resumed);
      std::printf(
          "  events: %zu records across crash+recovery; exactly-once "
          "published for all %zu jobs\n",
          events.size(), jobs);
    }

    // ---- phase B: backpressure probe (typed shedding, never hangs) --------------
    double shed_rate = 0.0;
    {
      service::DaemonConfig config = daemon_config("spool_probe");
      config.workers = 1;
      config.queue_capacity = 2;
      config.tenant_quota = 1;
      std::atomic<bool> release{false};
      config.fault_arm = [&release](device::Device&, const std::string&,
                                    const std::string&) {
        while (!release.load()) std::this_thread::sleep_for(1ms);
      };
      service::Daemon daemon(config);

      service::JobSpec held = specs[0];
      held.job_id = "probe-0";
      held.tenant = "alice";
      daemon.submit(held);

      service::JobSpec quota = specs[1];
      quota.job_id = "probe-1";
      quota.tenant = "alice";
      const service::ErrorCode quota_code =
          expect_rejected(daemon, std::move(quota), "over-quota job");
      BENCH_CHECK(quota_code == service::ErrorCode::kQuotaExceeded,
                  "over-quota rejection was %s",
                  service::error_code_name(quota_code));

      service::JobSpec fits = specs[2];
      fits.job_id = "probe-2";
      fits.tenant = "bob";
      daemon.submit(fits);

      service::JobSpec overflow = specs[3];
      overflow.job_id = "probe-3";
      overflow.tenant = "carol";
      const service::ErrorCode full_code =
          expect_rejected(daemon, std::move(overflow), "over-capacity job");
      BENCH_CHECK(full_code == service::ErrorCode::kQueueFull,
                  "over-capacity rejection was %s",
                  service::error_code_name(full_code));

      release.store(true);
      daemon.wait_idle();
      const service::DaemonStats stats = daemon.stats();
      BENCH_CHECK(stats.completed == 2, "probe completed %llu jobs, want 2",
                  static_cast<unsigned long long>(stats.completed));
      shed_rate = static_cast<double>(stats.shed_total()) /
                  static_cast<double>(stats.submitted);
      std::printf(
          "  backpressure: %llu/%llu submissions shed typed "
          "(quota_exceeded, queue_full) -> shed rate %.0f%%\n",
          static_cast<unsigned long long>(stats.shed_total()),
          static_cast<unsigned long long>(stats.submitted), 100.0 * shed_rate);
    }

    // ---- phase C: clean concurrent run, completion percentiles ------------------
    {
      service::Daemon daemon(daemon_config("spool_clean"));
      for (const service::JobSpec& spec : specs) daemon.submit(spec);
      std::vector<double> latencies;
      for (const service::JobSpec& spec : specs) {
        daemon.wait_job(spec.job_id, 300.0);
        const service::JobStatus status = daemon.status(spec.job_id);
        BENCH_CHECK(status.state == service::JobState::kDone,
                    "clean-phase job %s ended %s", spec.job_id.c_str(),
                    service::job_state_name(status.state));
        latencies.push_back(status.run_seconds);
      }
      std::printf(
          "  latency over %zu concurrent jobs (4 workers): p50 %.1f ms, "
          "p99 %.1f ms\n",
          jobs, 1e3 * percentile(latencies, 0.50),
          1e3 * percentile(latencies, 0.99));

      // Cross-check the daemon-side job_completion_seconds histogram against
      // the client-observed run_seconds.  Both sides see the identical sample
      // set (run_seconds is computed daemon-side and reported verbatim), and
      // both use the same ceil-rank quantile convention, so the only slack
      // needed is the histogram's bucket granularity: quantile() returns the
      // bucket's upper bound, at most 1/kSubBuckets = 12.5% above the true
      // sample (plus a tiny absolute floor for sub-millisecond runs).
      const obs::Histogram::Snapshot snap =
          daemon.metrics().histogram("job_completion_seconds").snapshot();
      BENCH_CHECK(snap.count == jobs,
                  "daemon completion histogram holds %llu samples, want %zu",
                  static_cast<unsigned long long>(snap.count), jobs);
      constexpr double kRelTolerance = 0.125;  // one log-linear sub-bucket
      constexpr double kAbsTolerance = 1e-4;   // seconds
      for (const double q : {0.50, 0.99}) {
        const double client_q = percentile(latencies, q);
        const double daemon_q = snap.quantile(q);
        BENCH_CHECK(daemon_q >= client_q - 1e-12 &&
                        daemon_q <= client_q * (1.0 + kRelTolerance) +
                                        kAbsTolerance,
                    "daemon p%.0f %.6fs disagrees with client p%.0f %.6fs "
                    "(tolerance +%.1f%% + %.0fus)",
                    100.0 * q, daemon_q, 100.0 * q, client_q,
                    100.0 * kRelTolerance, 1e6 * kAbsTolerance);
      }
      std::printf(
          "  telemetry: daemon-side histogram p50 %.1f ms, p99 %.1f ms agree "
          "with client within +%.1f%% bucket tolerance\n",
          1e3 * snap.quantile(0.50), 1e3 * snap.quantile(0.99),
          100.0 * kRelTolerance);
    }

    // ---- phase D (opt-in, --fs-faults): storage chaos ---------------------------
    if (fs_faults) {
      // Round A: transient container-write tears.  fault_count=2 with
      // max_attempts=3 means even back-to-back tears landing on one
      // chromosome's consecutive attempts still leave a clean third attempt.
      // Device chaos stays off so every digest is serial-comparable.
      {
        FsFaultPlan plan;
        plan.kind = FsFaultKind::kShortWrite;
        plan.path_filter = ".snp";
        plan.fault_count = 2;
        plan.seed = seed;
        fsfault::arm(plan);
        {
          service::DaemonConfig config = daemon_config("spool_fs");
          config.fault_arm = nullptr;
          service::Daemon daemon(config);
          for (const service::JobSpec& spec : specs) daemon.submit(spec);
          daemon.wait_idle();
          BENCH_CHECK(fsfault::injected() >= 1,
                      "transient fs-fault round never fired");
          for (const service::JobSpec& spec : specs) {
            const service::JobStatus status = daemon.status(spec.job_id);
            BENCH_CHECK(status.state == service::JobState::kDone,
                        "fs-chaos job %s ended %s (%s), want done",
                        spec.job_id.c_str(),
                        service::job_state_name(status.state),
                        status.error.c_str());
            BENCH_CHECK(status.manifest_digest == serial_digest[spec.job_id],
                        "fs-chaos job %s digest differs from serial run",
                        spec.job_id.c_str());
          }
        }
        fsfault::disarm();
        // Restart onto the same spool: nothing to resume, and the scrubber
        // signs off on every job the tears flew through.
        service::Daemon daemon(daemon_config("spool_fs"));
        const std::size_t fs_resumed = daemon.recover();
        BENCH_CHECK(fs_resumed == 0,
                    "fs-chaos spool had %zu unfinished job(s) after a clean "
                    "run",
                    fs_resumed);
        service::FsckOptions repair;
        repair.repair = true;
        (void)service::fsck_spool(workdir / "spool_fs", repair);
        const service::FsckReport report =
            service::fsck_spool(workdir / "spool_fs");
        BENCH_CHECK(report.all_clean(), "post-chaos fsck not clean: %s",
                    report.summary().c_str());
        std::printf(
            "  fs-faults A: %llu torn container write(s) absorbed; all %zu "
            "jobs byte-identical to serial; fsck %s\n",
            static_cast<unsigned long long>(fsfault::injected()), jobs,
            report.summary().c_str());
      }
      // Round B: a persistently full disk.  Submits must fail typed — the
      // job is never half-admitted — and the identical submit goes through
      // once the storage heals.
      {
        FsFaultPlan plan;
        plan.kind = FsFaultKind::kEnospc;
        plan.path_filter = "job.json";
        plan.fault_count = -1;
        fsfault::arm(plan);
        service::DaemonConfig config = daemon_config("spool_fs_persistent");
        config.fault_arm = nullptr;
        service::Daemon daemon(config);
        service::JobSpec healed = specs[0];
        healed.job_id = "healed-0";
        const service::ErrorCode storage_code = expect_rejected(
            daemon, healed, "submit against a full spool disk");
        BENCH_CHECK(storage_code == service::ErrorCode::kStorageFailure,
                    "full-disk rejection was %s",
                    service::error_code_name(storage_code));
        const u64 persistent_hits = fsfault::injected();
        fsfault::disarm();
        daemon.submit(healed);  // same id: it was never admitted, clean slate
        daemon.wait_job("healed-0", 300.0);
        const service::JobStatus status = daemon.status("healed-0");
        BENCH_CHECK(status.state == service::JobState::kDone,
                    "healed job ended %s (%s), want done",
                    service::job_state_name(status.state),
                    status.error.c_str());
        BENCH_CHECK(status.manifest_digest == serial_digest[specs[0].job_id],
                    "healed job digest differs from serial run");
        BENCH_CHECK(daemon.stats().rejected_storage == 1,
                    "expected exactly one storage rejection, got %llu",
                    static_cast<unsigned long long>(
                        daemon.stats().rejected_storage));
        std::printf(
            "  fs-faults B: persistent journal ENOSPC rejected typed "
            "(storage_failure, %llu hit(s)); identical resubmit completed "
            "after heal\n",
            static_cast<unsigned long long>(persistent_hits));
      }
    }

    if (g_failures > 0) {
      std::fprintf(stderr, "bench_service: %d check(s) failed\n", g_failures);
      return 1;
    }
    std::printf(
        "bench_service OK: every admitted job survived faults, a mid-run "
        "crash, and recovery with byte-identical outputs; overload was shed "
        "with typed errors\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_service: %s\n", e.what());
    return 1;
  }
}
