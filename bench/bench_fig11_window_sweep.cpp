// Reproduces paper Fig 11: GSNP elapsed time (a) and memory consumption (b)
// as the number of sites per window varies (Ch.1 analog).
//
// Expected shape: time roughly flat above ~128K sites/window, rising as
// windows shrink (per-window overhead, under-filled launches); memory grows
// with window size; results identical at every window size.

#include <cstdio>

#include "bench_util.hpp"
#include "src/core/consistency.hpp"

using namespace gsnp;
using namespace gsnp::bench;

int main(int argc, char** argv) {
  const u64 chr1_sites = flag_u64(argc, argv, "--chr1-sites", 450'000);
  print_banner("bench_fig11_window_sweep",
               "Fig 11: GSNP elapsed time and memory vs window size (Ch.1)",
               "Paper sweeps 32K-450K sites/window at 247M sites; scaled "
               "here, same window values.");
  const fs::path dir = bench_dir("fig11");
  const Dataset data = make_dataset(ch1_spec(chr1_sites), dir);

  std::printf("%12s %10s %14s %16s %16s\n", "window", "time(s)",
              "modeled_gpu(s)", "host_mem(MB)", "device_mem(MB)");

  std::string first_output;
  for (const u32 window : {32'768u, 65'536u, 131'072u, 262'144u, 458'752u}) {
    device::Device dev;
    auto config = config_for(data, dir, "w" + std::to_string(window));
    config.window_size = window;
    const auto report = core::run_gsnp(config, dev);

    std::printf("%12u %10.3f %14.4f %16.1f %16.1f\n", window, report.total(),
                report.device_modeled.total(),
                static_cast<double>(report.peak_host_bytes) / (1 << 20),
                static_cast<double>(report.peak_device_bytes) / (1 << 20));

    // Fig 11 companion claim: results unchanged by window size.
    if (first_output.empty()) {
      first_output = config.output_file.string();
    } else {
      const auto check =
          core::compare_output_files(first_output, config.output_file);
      if (!check.identical) {
        std::printf("CONSISTENCY FAILURE at window %u:\n%s\n", window,
                    check.detail.c_str());
        return 1;
      }
    }
  }
  std::printf("results identical across all window sizes\n");

  // Batcher axis: the same chromosome at one fixed window size, fixed-window
  // scheduling vs floating-by-budget at several byte budgets.  The effective
  // sites-per-batch column is what Fig 11 sweeps by hand — here it floats
  // with observed depth instead of being picked up front — and the measured
  // per-batch device watermark must honor each budget.
  std::printf("\n%12s %10s %10s %12s %16s %16s\n", "budget(MB)", "time(s)",
              "batches", "sites/batch", "planned(MB)", "actual(MB)");
  for (const u64 budget_mb : {2u, 8u, 32u}) {
    device::Device dev;
    auto config =
        config_for(data, dir, "b" + std::to_string(budget_mb) + "mb");
    config.window_size = 131'072;
    config.batch_bytes = budget_mb << 20;
    const auto report = core::run_gsnp(config, dev);

    const double mean_sites =
        report.batch.batches > 0
            ? static_cast<double>(report.sites) /
                  static_cast<double>(report.batch.batches)
            : 0.0;
    std::printf("%12llu %10.3f %10llu %12.0f %16.2f %16.2f\n",
                static_cast<unsigned long long>(budget_mb), report.total(),
                static_cast<unsigned long long>(report.batch.batches),
                mean_sites,
                static_cast<double>(report.batch.planned_peak_bytes) /
                    (1 << 20),
                static_cast<double>(report.batch.actual_peak_bytes) /
                    (1 << 20));

    if (report.batch.actual_peak_bytes > config.batch_bytes) {
      std::printf("BUDGET FAILURE at %llu MB: measured peak %llu exceeds "
                  "budget %llu\n",
                  static_cast<unsigned long long>(budget_mb),
                  static_cast<unsigned long long>(
                      report.batch.actual_peak_bytes),
                  static_cast<unsigned long long>(config.batch_bytes));
      return 1;
    }
    const auto check =
        core::compare_output_files(first_output, config.output_file);
    if (!check.identical) {
      std::printf("CONSISTENCY FAILURE at budget %llu MB:\n%s\n",
                  static_cast<unsigned long long>(budget_mb),
                  check.detail.c_str());
      return 1;
    }
  }
  std::printf("results identical across all batch budgets\n");
  print_paper_note("time flat above ~256K, mild rise at 128K, sharp below; "
                   "memory scales with window (1 GB host + 1.5 GB device at "
                   "256K in the paper); with a byte budget the device "
                   "footprint is flat by construction while sites/batch "
                   "floats with depth");
  return 0;
}
