// Reproduces paper Fig 11: GSNP elapsed time (a) and memory consumption (b)
// as the number of sites per window varies (Ch.1 analog).
//
// Expected shape: time roughly flat above ~128K sites/window, rising as
// windows shrink (per-window overhead, under-filled launches); memory grows
// with window size; results identical at every window size.

#include <cstdio>

#include "bench_util.hpp"
#include "src/core/consistency.hpp"

using namespace gsnp;
using namespace gsnp::bench;

int main(int argc, char** argv) {
  const u64 chr1_sites = flag_u64(argc, argv, "--chr1-sites", 450'000);
  print_banner("bench_fig11_window_sweep",
               "Fig 11: GSNP elapsed time and memory vs window size (Ch.1)",
               "Paper sweeps 32K-450K sites/window at 247M sites; scaled "
               "here, same window values.");
  const fs::path dir = bench_dir("fig11");
  const Dataset data = make_dataset(ch1_spec(chr1_sites), dir);

  std::printf("%12s %10s %14s %16s %16s\n", "window", "time(s)",
              "modeled_gpu(s)", "host_mem(MB)", "device_mem(MB)");

  std::string first_output;
  for (const u32 window : {32'768u, 65'536u, 131'072u, 262'144u, 458'752u}) {
    device::Device dev;
    auto config = config_for(data, dir, "w" + std::to_string(window));
    config.window_size = window;
    const auto report = core::run_gsnp(config, dev);

    std::printf("%12u %10.3f %14.4f %16.1f %16.1f\n", window, report.total(),
                report.device_modeled.total(),
                static_cast<double>(report.peak_host_bytes) / (1 << 20),
                static_cast<double>(report.peak_device_bytes) / (1 << 20));

    // Fig 11 companion claim: results unchanged by window size.
    if (first_output.empty()) {
      first_output = config.output_file.string();
    } else {
      const auto check =
          core::compare_output_files(first_output, config.output_file);
      if (!check.identical) {
        std::printf("CONSISTENCY FAILURE at window %u:\n%s\n", window,
                    check.detail.c_str());
        return 1;
      }
    }
  }
  std::printf("results identical across all window sizes\n");
  print_paper_note("time flat above ~256K, mild rise at 128K, sharp below; "
                   "memory scales with window (1 GB host + 1.5 GB device at "
                   "256K in the paper)");
  return 0;
}
