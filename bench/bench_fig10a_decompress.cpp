// Reproduces paper Fig 10(a): decompression / sequential-read speed of the
// SNP output — plain text scan, gzip decompress + scan, and GSNP in-memory
// window decompression.
//
// Expected shape: GSNP fastest (less data to read + cheap codecs; paper:
// ~40x over plain text, ~6x over gzip — driven there by disk I/O, here by
// parse/decode cost since the page cache hides the disk).

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_util.hpp"
#include "src/common/timer.hpp"
#include "src/compress/zlibwrap.hpp"
#include "src/core/consistency.hpp"
#include "src/core/output_codec.hpp"

using namespace gsnp;
using namespace gsnp::bench;

int main(int argc, char** argv) {
  const u64 chr1_sites = flag_u64(argc, argv, "--chr1-sites", 150'000);
  print_banner("bench_fig10a_decompress",
               "Fig 10(a): output decompression / sequential read speed",
               "Each scheme reads its file once and materializes every row.");
  const fs::path dir = bench_dir("fig10a");

  for (const auto& spec : {ch1_spec(chr1_sites), ch21_spec(chr1_sites)}) {
    const Dataset data = make_dataset(spec, dir);
    auto config = config_for(data, dir, "rows");
    config.window_size = 65'536;
    core::run_gsnp_cpu(config);

    // Materialize the three file formats.
    std::string seq_name;
    const auto rows = core::read_snp_output(config.output_file, seq_name);
    const fs::path text_path = dir / "out.txt";
    {
      core::SnpTextWriter writer(text_path, seq_name);
      writer.write_window(rows);
      writer.finish();
    }
    const fs::path gzip_path = dir / "out.txt.gz";
    {
      std::ifstream in(text_path, std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      const std::string text = ss.str();
      const auto packed = compress::zlib_compress(
          std::span<const u8>(reinterpret_cast<const u8*>(text.data()),
                              text.size()));
      std::ofstream out(gzip_path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(packed.data()),
                static_cast<std::streamsize>(packed.size()));
    }

    std::printf("\n%s (%zu rows):\n", spec.name.c_str(), rows.size());
    std::printf("%-10s %10s %14s\n", "scheme", "time(s)", "rows/s");

    double text_time = 0, gzip_time = 0, gsnp_time = 0;
    {  // Plain text sequential read + parse.
      Timer t;
      std::string name;
      const auto parsed = core::read_snp_text_file(text_path, name);
      text_time = t.seconds();
      std::printf("%-10s %10.3f %14.0f\n", "SOAPsnp", text_time,
                  parsed.size() / text_time);
    }
    {  // gzip: inflate, then parse the text.
      Timer t;
      std::ifstream in(gzip_path, std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      const std::string packed = ss.str();
      const auto text = compress::zlib_decompress(
          std::span<const u8>(reinterpret_cast<const u8*>(packed.data()),
                              packed.size()));
      std::istringstream text_in(
          std::string(reinterpret_cast<const char*>(text.data()), text.size()));
      std::string line, name;
      u64 n = 0;
      while (std::getline(text_in, line)) {
        (void)core::parse_snp_row(line, name);
        ++n;
      }
      gzip_time = t.seconds();
      std::printf("%-10s %10.3f %14.0f\n", "gzip", gzip_time, n / gzip_time);
    }
    {  // GSNP: streaming window decompression (the shipped reader API).
      Timer t;
      core::SnpOutputReader reader(config.output_file);
      std::vector<core::SnpRow> window;
      u64 n = 0;
      while (reader.next_window(window)) n += window.size();
      gsnp_time = t.seconds();
      std::printf("%-10s %10.3f %14.0f\n", "GSNP", gsnp_time, n / gsnp_time);
    }
    std::printf("  speedups: GSNP vs SOAPsnp %.1fx, GSNP vs gzip %.1fx\n",
                text_time / gsnp_time, gzip_time / gsnp_time);
  }
  print_paper_note("GSNP ~40x faster than plain SOAPsnp output reading and "
                   "~6x faster than gzip (disk-bound in the paper)");
  return 0;
}
