// Reproduces paper Fig 9(a): output file size for SOAPsnp (plain text),
// SOAPsnp + gzip, and GSNP's customized columnar compression.
//
// Expected shape: plain text ~14-16x larger than GSNP; gzip ~1.5x larger
// than GSNP (the custom codecs exploit column structure gzip cannot see).

#include <cstdio>
#include <fstream>

#include "bench_util.hpp"
#include "src/compress/zlibwrap.hpp"
#include "src/core/consistency.hpp"
#include "src/core/output_codec.hpp"

using namespace gsnp;
using namespace gsnp::bench;

int main(int argc, char** argv) {
  const u64 chr1_sites = flag_u64(argc, argv, "--chr1-sites", 150'000);
  print_banner("bench_fig9a_output_size",
               "Fig 9(a): output size — SOAPsnp text, text+gzip, GSNP",
               "");
  const fs::path dir = bench_dir("fig9a");

  std::printf("%-6s %12s %12s %12s %10s %10s\n", "", "text(B)", "gzip(B)",
              "GSNP(B)", "text/GSNP", "gzip/GSNP");

  for (const auto& spec : {ch1_spec(chr1_sites), ch21_spec(chr1_sites)}) {
    const Dataset data = make_dataset(spec, dir);
    auto config = config_for(data, dir, "fig9a");
    config.window_size = 65'536;
    const auto report = core::run_gsnp_cpu(config);
    const u64 gsnp_bytes = report.output_bytes;

    // Materialize the SOAPsnp text output from the same rows.
    std::string seq_name;
    const auto rows = core::read_snp_output(config.output_file, seq_name);
    std::string text;
    for (const auto& row : rows) {
      text += core::format_snp_row(seq_name, row);
      text += '\n';
    }
    const u64 text_bytes = text.size();
    const u64 gzip_bytes =
        compress::zlib_compress(
            std::span<const u8>(reinterpret_cast<const u8*>(text.data()),
                                text.size()))
            .size();

    std::printf("%-6s %12llu %12llu %12llu %9.1fx %9.1fx\n", spec.name.c_str(),
                static_cast<unsigned long long>(text_bytes),
                static_cast<unsigned long long>(gzip_bytes),
                static_cast<unsigned long long>(gsnp_bytes),
                static_cast<double>(text_bytes) / gsnp_bytes,
                static_cast<double>(gzip_bytes) / gsnp_bytes);
  }
  print_paper_note("text ~14-16x GSNP; gzip ~1.5x GSNP");
  return 0;
}
