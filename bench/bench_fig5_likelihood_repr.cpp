// Reproduces paper Fig 5: likelihood-calculation time under the four
// representation/processor combinations —
//   SOAPsnp    : dense representation on the CPU (Algorithm 1), measured
//   GPU dense  : dense representation on the device, modeled from counters
//   GSNP_CPU   : sparse representation on the CPU (Algorithm 4), measured
//   GSNP       : sparse representation on the device (sort + optimized
//                kernel), modeled from counters
//
// Expected shape: GSNP_CPU beats SOAPsnp several-fold; GSNP beats everything;
// GPU dense sits an order of magnitude above GSNP (paper: 14-17x slower).

#include <cstdio>

#include "bench_util.hpp"
#include "src/common/timer.hpp"
#include "src/core/base_occ.hpp"
#include "src/core/kernels.hpp"
#include "src/core/likelihood.hpp"
#include "src/core/window.hpp"
#include "src/device/perf_model.hpp"
#include "src/reads/alignment.hpp"
#include "src/sortnet/multipass.hpp"

using namespace gsnp;
using namespace gsnp::bench;

namespace {

struct Fig5Result {
  double soapsnp = 0.0;
  double gpu_dense = 0.0;
  double gsnp_cpu = 0.0;
  double gsnp = 0.0;
};

Fig5Result run_dataset(const Dataset& data, u32 window_size,
                       u32 dense_window) {
  Fig5Result result;
  const device::PerfModel model;

  // One shared table set, built the way the engines build it.
  core::PMatrixCounter counter;
  {
    reads::AlignmentReader reader(data.align_file);
    while (auto rec = reader.next()) {
      if (rec->hit_count != 1) continue;
      for (u64 p = rec->pos; p < rec->pos + rec->length; ++p) {
        const u8 r = data.ref.base(p);
        if (r >= kNumBases) continue;
        reads::SiteObservation so;
        if (reads::observe_site(*rec, p, so))
          counter.add(so.quality, so.coord, r, so.base);
      }
    }
  }
  const core::PMatrix pm = core::finalize_p_matrix(counter);
  const core::NewPMatrix npm(pm);

  device::Device dev;
  const core::DeviceScoreTables tables(dev, pm, npm);

  auto reader = std::make_shared<reads::AlignmentReader>(data.align_file);
  core::WindowLoader loader([reader] { return reader->next(); },
                            data.ref.size(), window_size);
  core::WindowRecords win;
  core::WindowObs obs;
  std::vector<core::SiteStats> stats;
  core::BaseOccWindow dense(window_size);
  core::BaseWordWindow sparse(window_size);

  while (loader.next(win)) {
    core::count_window(win, obs, stats, &dense, &sparse);

    {  // SOAPsnp: dense CPU.
      Timer t;
      for (u32 s = 0; s < win.size; ++s)
        (void)core::likelihood_dense_site(dense.site(s), pm);
      result.soapsnp += t.seconds();
    }
    {  // GSNP_CPU: sparse CPU (quicksort + Algorithm 4).
      core::BaseWordWindow copy = sparse;
      Timer t;
      core::likelihood_sort_cpu(copy);
      for (u32 s = 0; s < win.size; ++s)
        (void)core::likelihood_sparse_site(copy.site(s), npm);
      result.gsnp_cpu += t.seconds();
    }
    {  // GSNP: device multipass sort + optimized kernel, modeled.
      core::BaseWordWindow copy = sparse;
      const auto before = dev.counters();
      sortnet::VarArrays va;
      va.values = std::move(copy.words);
      va.offsets = std::move(copy.offsets);
      sortnet::sort_device_multipass(dev, va);
      copy.words = std::move(va.values);
      copy.offsets = std::move(va.offsets);
      (void)core::device_likelihood_sparse(dev, copy, tables);
      result.gsnp += model.seconds(device::counters_delta(before,
                                                          dev.counters()));
    }
    // GPU dense is expensive to simulate; run it on a prefix of windows and
    // scale (the per-site cost is uniform by construction of the dense scan).
    if (win.start < dense_window) {
      core::BaseWordWindow sorted = sparse;
      core::likelihood_sort_cpu(sorted);
      const auto before = dev.counters();
      (void)core::device_likelihood_dense(dev, sorted, tables);
      const double seconds =
          model.seconds(device::counters_delta(before, dev.counters()));
      result.gpu_dense +=
          seconds;  // scaled after the loop by sites ratio
    }
    dense.recycle();
  }
  // Scale GPU-dense from the simulated prefix to the whole dataset.
  const double fraction =
      std::min<double>(1.0, static_cast<double>(dense_window) /
                                static_cast<double>(data.ref.size()));
  result.gpu_dense /= fraction;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const u64 chr1_sites = flag_u64(argc, argv, "--chr1-sites", 40'000);
  const u64 dense_sites = flag_u64(argc, argv, "--gpu-dense-sites", 8'192);
  print_banner("bench_fig5_likelihood_repr",
               "Fig 5: likelihood time — dense/sparse x CPU/GPU",
               "GPU columns are modeled M2050 seconds from measured kernel "
               "operation counts (see DESIGN.md).");
  const fs::path dir = bench_dir("fig5");

  std::printf("%-6s %12s %12s %12s %12s %14s\n", "", "SOAPsnp(s)",
              "GPUdense(s)", "GSNP_CPU(s)", "GSNP(s)", "SOAPsnp/GSNP");
  for (const auto& spec : {ch1_spec(chr1_sites), ch21_spec(chr1_sites)}) {
    const Dataset data = make_dataset(spec, dir);
    const Fig5Result r =
        run_dataset(data, 16'384, static_cast<u32>(dense_sites));
    std::printf("%-6s %12.3f %12.3f %12.3f %12.3f %13.0fx\n",
                spec.name.c_str(), r.soapsnp, r.gpu_dense, r.gsnp_cpu, r.gsnp,
                r.soapsnp / r.gsnp);
    std::printf("  shape: GSNP_CPU %.1fx faster than SOAPsnp; GPU dense "
                "%.1fx slower than GSNP\n",
                r.soapsnp / r.gsnp_cpu, r.gpu_dense / r.gsnp);
  }
  print_paper_note("GSNP_CPU ~4-5x over SOAPsnp; GSNP two orders of magnitude "
                   "over SOAPsnp; GPU dense 14-17x slower than GSNP");
  return 0;
}
