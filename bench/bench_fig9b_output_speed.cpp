// Reproduces paper Fig 9(b): output speed — compression (if any) plus the
// file write — for SOAPsnp text, SOAPsnp text + gzip, GSNP_CPU (host
// codecs), and GSNP (device RLE-DICT for the six quality columns, modeled).
//
// Expected shape: gzip ~3x slower than GSNP_CPU; GSNP ~3x faster than
// GSNP_CPU; GSNP ~13-15x faster than plain SOAPsnp output.

#include <cstdio>
#include <fstream>

#include "bench_util.hpp"
#include "src/common/timer.hpp"
#include "src/compress/device_rledict.hpp"
#include "src/compress/zlibwrap.hpp"
#include "src/core/consistency.hpp"
#include "src/core/output_codec.hpp"
#include "src/device/perf_model.hpp"

using namespace gsnp;
using namespace gsnp::bench;

namespace {

void write_file(const fs::path& path, std::span<const u8> bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

int main(int argc, char** argv) {
  const u64 chr1_sites = flag_u64(argc, argv, "--chr1-sites", 150'000);
  print_banner("bench_fig9b_output_speed",
               "Fig 9(b): output speed (compression + write)",
               "GSNP row = modeled device compression time + measured frame "
               "build/write.");
  const fs::path dir = bench_dir("fig9b");
  const device::PerfModel model;

  for (const auto& spec : {ch1_spec(chr1_sites), ch21_spec(chr1_sites)}) {
    const Dataset data = make_dataset(spec, dir);
    auto config = config_for(data, dir, "rows");
    config.window_size = 65'536;
    core::run_gsnp_cpu(config);
    std::string seq_name;
    const auto rows = core::read_snp_output(config.output_file, seq_name);
    constexpr std::size_t kWindow = 65'536;

    std::printf("\n%s (%zu rows):\n", spec.name.c_str(), rows.size());
    std::printf("%-12s %10s %12s\n", "scheme", "time(s)", "bytes");

    double soapsnp_time = 0.0;
    {  // SOAPsnp: text conversion + write.
      Timer t;
      core::SnpTextWriter writer(dir / "out.txt", seq_name);
      for (std::size_t i = 0; i < rows.size(); i += kWindow)
        writer.write_window(
            {rows.data() + i, std::min(kWindow, rows.size() - i)});
      const u64 bytes = writer.finish();
      soapsnp_time = t.seconds();
      std::printf("%-12s %10.3f %12llu\n", "SOAPsnp", soapsnp_time,
                  static_cast<unsigned long long>(bytes));
    }
    {  // SOAPsnp + gzip.
      Timer t;
      std::string text;
      for (const auto& row : rows) {
        text += core::format_snp_row(seq_name, row);
        text += '\n';
      }
      const auto packed = compress::zlib_compress(
          std::span<const u8>(reinterpret_cast<const u8*>(text.data()),
                              text.size()));
      write_file(dir / "out.txt.gz", packed);
      std::printf("%-12s %10.3f %12llu\n", "gzip", t.seconds(),
                  static_cast<unsigned long long>(packed.size()));
    }
    double gsnp_cpu_time = 0.0;
    {  // GSNP_CPU: host columnar codecs.
      Timer t;
      core::SnpOutputWriter writer(dir / "out.bin", seq_name);
      const auto rle = core::host_rle_dict();
      for (std::size_t i = 0; i < rows.size(); i += kWindow)
        writer.write_window(
            {rows.data() + i, std::min(kWindow, rows.size() - i)}, rle);
      const u64 bytes = writer.finish();
      gsnp_cpu_time = t.seconds();
      std::printf("%-12s %10.3f %12llu\n", "GSNP_CPU", gsnp_cpu_time,
                  static_cast<unsigned long long>(bytes));
    }
    {  // GSNP: device RLE-DICT (modeled) + host residue (measured).
      device::Device dev;
      double sim_wall = 0.0;
      const core::RleDictFn rle = [&](std::span<const u32> col,
                                      std::vector<u8>& out) {
        const Timer t;
        compress::device_encode_rle_dict(dev, col, out);
        sim_wall += t.seconds();
      };
      Timer t;
      core::SnpOutputWriter writer(dir / "out_dev.bin", seq_name);
      for (std::size_t i = 0; i < rows.size(); i += kWindow)
        writer.write_window(
            {rows.data() + i, std::min(kWindow, rows.size() - i)}, rle);
      const u64 bytes = writer.finish();
      const double host_time = t.seconds() - sim_wall;
      const double device_time = model.seconds(dev.counters());
      const double total = host_time + device_time;
      std::printf("%-12s %10.3f %12llu   (host %.3f + device %.3f)\n", "GSNP",
                  total, static_cast<unsigned long long>(bytes), host_time,
                  device_time);
      std::printf("  speedups: GSNP vs SOAPsnp %.1fx, GSNP vs GSNP_CPU "
                  "%.1fx\n",
                  soapsnp_time / total, gsnp_cpu_time / total);
    }
  }
  print_paper_note("gzip ~3x slower than GSNP_CPU; GSNP ~3x faster than "
                   "GSNP_CPU and ~13-15x faster than SOAPsnp text output");
  return 0;
}
