// Reproduces paper Fig 7(a): batch-sort throughput (million elements/sec)
// as a function of the batch array size, for three implementations:
//   cpu_qsort  — OpenMP parallel CPU sort, one thread per array (measured)
//   batch_bitonic — our device batch-sort primitive (modeled M2050 time)
//   radix_seq  — device-wide radix sort applied to one array at a time
//                (modeled; the Thrust-style baseline)
//
// Expected shape: batch_bitonic above cpu_qsort (paper: ~1.5x); radix_seq
// orders of magnitude below both; throughput decreases as arrays grow.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "src/common/timer.hpp"
#include "src/device/perf_model.hpp"
#include "src/sortnet/batch_sort.hpp"
#include "src/sortnet/multipass.hpp"

using namespace gsnp;
using namespace gsnp::bench;

int main(int argc, char** argv) {
  const u64 total_elements = flag_u64(argc, argv, "--elements", 2'000'000);
  const u64 radix_arrays = flag_u64(argc, argv, "--radix-arrays", 64);
  print_banner("bench_fig7a_batchsort",
               "Fig 7(a): batch sort throughput vs array size",
               "Throughput = elements sorted / second (Melem/s); GPU rows "
               "are modeled M2050 time.");
  const device::PerfModel model;

  std::printf("%10s %16s %16s %16s\n", "array_size", "cpu_qsort",
              "batch_bitonic", "radix_seq");

  for (const u32 array_size : {16u, 32u, 64u, 128u, 256u}) {
    const u64 num_arrays = total_elements / array_size;

    // CPU parallel quicksort (measured wall-clock).
    double cpu_melems;
    {
      sortnet::VarArrays va =
          sortnet::equal_var_arrays(num_arrays, array_size, 1u << 18, 5);
      Timer t;
      sortnet::sort_cpu_batch(va);
      cpu_melems = static_cast<double>(total_elements) / t.seconds() / 1e6;
    }

    // Device batch bitonic (modeled).
    double gpu_melems;
    {
      sortnet::VarArrays va =
          sortnet::equal_var_arrays(num_arrays, array_size, 1u << 18, 6);
      device::Device dev;
      auto buf = dev.to_device(std::span<const u32>(va.values));
      dev.reset_counters();
      sortnet::batch_bitonic_sort(dev, buf, array_size, num_arrays);
      gpu_melems = static_cast<double>(total_elements) /
                   model.seconds(dev.counters()) / 1e6;
    }

    // Sequential device radix per array (modeled; run on a subsample — the
    // per-array cost is constant for equal sizes, so throughput is exact).
    double radix_melems;
    {
      sortnet::VarArrays va = sortnet::equal_var_arrays(
          std::min(radix_arrays, num_arrays), array_size, 1u << 18, 7);
      device::Device dev;
      dev.reset_counters();
      sortnet::sort_device_radix_seq(dev, va);
      radix_melems = static_cast<double>(va.total_elements()) /
                     model.seconds(dev.counters()) / 1e6;
    }

    std::printf("%10u %13.1f M/s %13.1f M/s %13.3f M/s\n", array_size,
                cpu_melems, gpu_melems, radix_melems);
  }
  print_paper_note("GPU batch sort ~1.5x the parallel-CPU throughput; the "
                   "sequential radix baseline is orders of magnitude lower; "
                   "throughput decreases with array size");
  return 0;
}
