// Reproduces paper Fig 7(b): multipass vs single-pass vs non-equal bitonic
// sorting of base_word-shaped variable-size arrays.
//
// Expected shape: multipass ~5x faster than single-pass (it sorts ~4x fewer
// padded elements and small batches have higher throughput); the non-equal
// variant loses to multipass through workload imbalance (idle SIMT lanes).

#include <cstdio>

#include "bench_util.hpp"
#include "src/device/perf_model.hpp"
#include "src/sortnet/multipass.hpp"

using namespace gsnp;
using namespace gsnp::bench;

int main(int argc, char** argv) {
  const u64 num_arrays = flag_u64(argc, argv, "--arrays", 200'000);
  const double mean_size = flag_double(argc, argv, "--mean-size", 11.0);
  const u64 max_size = flag_u64(argc, argv, "--max-size", 120);
  print_banner("bench_fig7b_multipass",
               "Fig 7(b): multipass vs single-pass vs non-equal bitonic",
               "base_word-shaped size distribution (geometric, mean ~= "
               "sequencing depth); modeled M2050 seconds.");
  const device::PerfModel model;

  const auto make = [&] {
    return sortnet::random_var_arrays(num_arrays, mean_size,
                                      static_cast<u32>(max_size), 1u << 18,
                                      99);
  };

  struct Row {
    const char* name;
    sortnet::SortStats stats;
    double seconds;
  };
  std::vector<Row> rows;

  {
    sortnet::VarArrays va = make();
    device::Device dev;
    dev.reset_counters();
    const auto stats = sortnet::sort_device_multipass(dev, va);
    rows.push_back({"bitonic_MP", stats, model.seconds(dev.counters())});
  }
  {
    sortnet::VarArrays va = make();
    device::Device dev;
    dev.reset_counters();
    const auto stats = sortnet::sort_device_singlepass(dev, va);
    rows.push_back({"bitonic_SP", stats, model.seconds(dev.counters())});
  }
  {
    sortnet::VarArrays va = make();
    device::Device dev;
    dev.reset_counters();
    const auto stats = sortnet::sort_device_noneq(dev, va);
    rows.push_back({"bitonic_noneq", stats, model.seconds(dev.counters())});
  }

  std::printf("%-14s %10s %14s %10s %12s\n", "variant", "passes",
              "elems_sorted", "time(s)", "vs MP");
  const double mp_time = rows[0].seconds;
  for (const auto& row : rows) {
    std::printf("%-14s %10u %14llu %10.4f %11.2fx\n", row.name,
                row.stats.passes,
                static_cast<unsigned long long>(row.stats.elements_padded),
                row.seconds, row.seconds / mp_time);
  }
  std::printf("\nsingle-pass sorts %.1fx more (padded) elements than "
              "multipass\n",
              static_cast<double>(rows[1].stats.elements_padded) /
                  static_cast<double>(rows[0].stats.elements_padded));
  print_paper_note("multipass ~5x faster than single-pass (which sorts ~4x "
                   "more elements); non-equal direct bitonic also loses to "
                   "multipass via imbalance");
  return 0;
}
