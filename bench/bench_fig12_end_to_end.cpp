// Reproduces paper Fig 12: end-to-end performance of SOAPsnp, GSNP_CPU, and
// GSNP across all 24 human chromosomes (sizes scaled proportionally to the
// hg18 karyotype; --chr1-sites controls the scale).
//
// Expected shape: GSNP wins on every chromosome by a large factor (paper:
// at least 40x; three days -> two hours for the whole genome).  Results are
// verified identical across engines on every chromosome.

#include <cstdio>

#include "bench_util.hpp"
#include "src/core/consistency.hpp"
#include "src/genome/karyotype.hpp"

using namespace gsnp;
using namespace gsnp::bench;

int main(int argc, char** argv) {
  const u64 chr1_sites = flag_u64(argc, argv, "--chr1-sites", 24'000);
  const u64 n_chroms =
      flag_u64(argc, argv, "--chromosomes", genome::kHumanKaryotype.size());
  print_banner("bench_fig12_end_to_end",
               "Fig 12: end-to-end comparison over all 24 chromosomes",
               "Chromosome sizes follow the hg18 karyotype, chr1 scaled to " +
                   std::to_string(chr1_sites) + " sites.");
  const fs::path dir = bench_dir("fig12");

  std::printf("%-6s %10s %12s %12s %10s %10s\n", "", "sites", "SOAPsnp(s)",
              "GSNP_CPU(s)", "GSNP(s)", "speedup");

  double totals[3] = {0, 0, 0};
  for (std::size_t c = 0;
       c < n_chroms && c < genome::kHumanKaryotype.size(); ++c) {
    const auto& info = genome::kHumanKaryotype[c];
    DatasetSpec spec;
    spec.name = std::string(info.name);
    spec.sites = genome::scaled_sites(info, chr1_sites);
    spec.depth = 10.0;
    spec.mappable = 0.85;
    spec.seed = 500 + c;
    const Dataset data = make_dataset(spec, dir);

    auto config = config_for(data, dir, "soapsnp");
    config.window_size = 4'000;
    const auto soapsnp = core::run_soapsnp(config);
    const fs::path soapsnp_out = config.output_file;

    config = config_for(data, dir, "gsnpcpu");
    config.window_size = 65'536;
    const auto gsnp_cpu = core::run_gsnp_cpu(config);

    device::Device dev;
    config = config_for(data, dir, "gsnp");
    config.window_size = 65'536;
    const auto gsnp = core::run_gsnp(config, dev);

    const auto check = core::compare_output_files(soapsnp_out,
                                                  config.output_file);
    if (!check.identical) {
      std::printf("CONSISTENCY FAILURE on %s:\n%s\n", spec.name.c_str(),
                  check.detail.c_str());
      return 1;
    }

    totals[0] += soapsnp.total();
    totals[1] += gsnp_cpu.total();
    totals[2] += gsnp.total();
    std::printf("%-6s %10llu %12.2f %12.3f %10.3f %9.0fx\n", spec.name.c_str(),
                static_cast<unsigned long long>(spec.sites), soapsnp.total(),
                gsnp_cpu.total(), gsnp.total(),
                soapsnp.total() / gsnp.total());
  }

  std::printf("\nwhole-genome totals: SOAPsnp %.1fs, GSNP_CPU %.1fs (%.1fx), "
              "GSNP %.1fs (%.1fx)\n",
              totals[0], totals[1], totals[0] / totals[1], totals[2],
              totals[0] / totals[2]);
  std::printf("all 24 chromosome outputs verified identical across engines\n");
  print_paper_note("paper: >= 40x on every chromosome; whole genome three "
                   "days (SOAPsnp) -> about two hours (GSNP)");
  return 0;
}
