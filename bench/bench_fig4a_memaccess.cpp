// Reproduces paper Fig 4(a): comparison of the *estimated* memory access
// time on base_occ (Formula 1: S x |base_occ| / B_cpu) against the measured
// likelihood-calculation and memory-recycle time of SOAPsnp.
//
// Expected shape: the estimate accounts for the majority of both components
// (paper: 65-70% of likelihood, 89-92% of recycle) — i.e. the dense
// representation is memory-bound.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "src/common/timer.hpp"
#include "src/core/base_occ.hpp"

using namespace gsnp;
using namespace gsnp::bench;

namespace {

/// Measured sequential-read bandwidth of this host (the B_cpu of Formula 1;
/// the paper's server measured 4.2 GB/s).
double measure_stream_bandwidth() {
  const std::size_t bytes = 512ull << 20;
  std::vector<u8> buf(bytes, 1);
  volatile u64 sink = 0;
  Timer t;
  u64 sum = 0;
  const u64* words = reinterpret_cast<const u64*>(buf.data());
  for (std::size_t i = 0; i < bytes / 8; ++i) sum += words[i];
  sink = sum;
  (void)sink;
  return static_cast<double>(bytes) / t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const u64 chr1_sites = flag_u64(argc, argv, "--chr1-sites", 80'000);
  print_banner("bench_fig4a_memaccess",
               "Fig 4(a): estimated base_occ access time vs measured "
               "likelihood / recycle time",
               "");
  const fs::path dir = bench_dir("fig4a");

  const double bandwidth = measure_stream_bandwidth();
  std::printf("measured sequential-read bandwidth: %.2f GB/s (paper host: "
              "4.2 GB/s)\n\n",
              bandwidth / 1e9);

  std::printf("%-6s %12s %12s %12s %10s %10s\n", "", "est(s)", "likeli(s)",
              "recycle(s)", "est/lik", "est/rec");

  for (const auto& spec : {ch1_spec(chr1_sites), ch21_spec(chr1_sites)}) {
    const Dataset data = make_dataset(spec, dir);
    auto config = config_for(data, dir, "fig4a");
    config.window_size = 4'000;
    const core::RunReport report = core::run_soapsnp(config);

    // Formula 1: S * |base_occ| / B_cpu, charged once for the likelihood
    // traversal and once for the recycle memset.
    const double estimate =
        static_cast<double>(data.ref.size()) *
        static_cast<double>(core::kBaseOccPerSite) / bandwidth;

    const double likeli = report.component("likeli");
    const double recycle = report.component("recycle");
    std::printf("%-6s %12.2f %12.2f %12.2f %9.0f%% %9.0f%%\n",
                spec.name.c_str(), estimate, likeli, recycle,
                100.0 * estimate / likeli, 100.0 * estimate / recycle);
  }
  print_paper_note("estimate covers 65-70% of likelihood and 89-92% of "
                   "recycle time on the paper's 4.2 GB/s host");
  print_paper_note("on a modern host the dense traversal is compute-bound "
                   "(~1 cycle/cell), so est/likeli lands lower — the recycle "
                   "column remains memory-bound as in the paper");
  return 0;
}
