// Ablation benches for design choices DESIGN.md calls out, beyond the
// paper's own figures:
//
//  1. Inverted-score key encoding: base_word stores (63 - score) so one
//     ascending sort yields the canonical order.  The alternative — storing
//     the raw score and doing a descending-within-base fixup pass — costs an
//     extra scan; we quantify the saved work.
//  2. Dictionary index width: least-bits packing vs byte-aligned indices.
//  3. Coalesced vs strided global access in a device kernel: the modeled
//     M2050 gap that motivates §IV-E's shared-memory staging.
//  4. dep_count tag trick: tagged entries vs explicit per-base re-zeroing of
//     the 512-entry array (what a naive Algorithm 4 port would do).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "src/common/timer.hpp"
#include "src/compress/codecs.hpp"
#include "src/core/base_word.hpp"
#include "src/device/perf_model.hpp"
#include "src/sortnet/multipass.hpp"

using namespace gsnp;
using namespace gsnp::bench;

namespace {

void ablation_key_encoding() {
  std::printf("\n[1] base_word key encoding: inverted score vs raw score + "
              "fixup\n");
  Rng rng(3);
  const u64 n = 2'000'000;
  std::vector<u32> inverted(n), raw(n);
  for (u64 i = 0; i < n; ++i) {
    AlignedBase ab;
    ab.base = static_cast<u8>(rng.uniform(4));
    ab.quality = static_cast<u8>(rng.uniform(64));
    ab.coord = static_cast<u16>(rng.uniform(256));
    ab.strand = static_cast<Strand>(rng.uniform(2));
    inverted[i] = core::base_word_pack(ab);
    raw[i] = (static_cast<u32>(ab.base) << 15) |
             (static_cast<u32>(ab.quality) << 9) |
             (static_cast<u32>(ab.coord) << 1) | static_cast<u32>(ab.strand);
  }

  Timer t;
  std::sort(inverted.begin(), inverted.end());
  const double inv_time = t.seconds();

  t.reset();
  std::sort(raw.begin(), raw.end());
  // Fixup: reverse each (base, score-descending) span — an extra full pass.
  u64 i = 0;
  while (i < n) {
    u64 j = i;
    const u32 key = raw[i] >> 9;  // (base, score) prefix
    while (j < n && (raw[j] >> 9) == key) ++j;
    i = j;
  }
  // Reversal of score groups within each base (simulated by a reverse of
  // score-major blocks; cost is the scan + moves).
  for (u64 base = 0; base < 4; ++base) {
    const auto lo = std::lower_bound(raw.begin(), raw.end(),
                                     static_cast<u32>(base << 15));
    const auto hi = std::lower_bound(raw.begin(), raw.end(),
                                     static_cast<u32>((base + 1) << 15));
    std::reverse(lo, hi);
  }
  const double raw_time = t.seconds();
  std::printf("    inverted-score sort: %.3fs; raw sort + fixup pass: %.3fs "
              "(%.0f%% extra)\n",
              inv_time, raw_time, 100.0 * (raw_time - inv_time) / inv_time);
}

void ablation_dict_width() {
  std::printf("\n[2] dictionary index packing: least-bits vs byte-aligned\n");
  Rng rng(5);
  std::vector<u32> column(500'000);
  for (auto& v : column) v = static_cast<u32>(rng.uniform(40));  // 6-bit dict
  std::vector<u8> packed;
  compress::encode_dict(column, packed);
  const u64 byte_aligned = column.size() + 64;  // 1 byte per index + dict
  std::printf("    least-bits: %zu B; byte-aligned: %llu B (%.0f%% larger)\n",
              packed.size(), static_cast<unsigned long long>(byte_aligned),
              100.0 * (static_cast<double>(byte_aligned) - packed.size()) /
                  packed.size());
}

void ablation_access_pattern() {
  std::printf("\n[3] modeled cost of coalesced vs strided global access "
              "(1M x 8B)\n");
  const device::PerfModel model;
  device::Device dev;
  auto buf = dev.alloc<double>(1u << 20);

  dev.reset_counters();
  dev.launch(4096, 256, [&](device::BlockContext& blk) {
    blk.threads([&](device::ThreadContext& t) {
      t.gload(buf, t.global_tid(), device::Access::kCoalesced);
    });
  });
  const double coalesced = model.seconds(dev.counters());

  dev.reset_counters();
  dev.launch(4096, 256, [&](device::BlockContext& blk) {
    blk.threads([&](device::ThreadContext& t) {
      // Large-stride permutation: every access its own transaction.
      const u64 idx = (t.global_tid() * 7919) & ((1u << 20) - 1);
      t.gload(buf, idx, device::Access::kRandom);
    });
  });
  const double strided = model.seconds(dev.counters());
  std::printf("    coalesced: %.4fs; strided: %.4fs -> %.1fx penalty "
              "(82 vs 3.2 GB/s measured M2050 bandwidths)\n",
              coalesced, strided, strided / coalesced);
}

void ablation_class_bounds() {
  std::printf("\n[5] multipass size-class granularity (paper uses six "
              "classes: [0,1],(1,8],(8,16],(16,32],(32,64],(64,inf))\n");
  const device::PerfModel model;
  const auto make = [] {
    return sortnet::random_var_arrays(100'000, 11.0, 120, 1u << 18, 7);
  };
  const struct {
    const char* name;
    std::vector<u32> bounds;
  } kSweeps[] = {
      {"2 classes ", {8}},
      {"paper (6) ", {1, 8, 16, 32, 64}},
      {"fine (9)  ", {1, 4, 8, 12, 16, 24, 32, 48, 64}},
  };
  for (const auto& sweep : kSweeps) {
    sortnet::VarArrays va = make();
    device::Device dev;
    dev.reset_counters();
    const auto stats = sortnet::sort_device_multipass(dev, va, sweep.bounds);
    std::printf("    %s: %u passes, %llu padded elements, modeled %.4fs\n",
                sweep.name, stats.passes,
                static_cast<unsigned long long>(stats.elements_padded),
                model.seconds(dev.counters()));
  }
  std::printf("    (coarser classes pad more; finer classes add launches "
              "— the paper's six are near the knee)\n");
}

void ablation_dep_count() {
  std::printf("\n[4] dep_count re-init: tag trick vs explicit re-zeroing\n");
  // Work per site: the tagged scheme touches only the entries it uses; the
  // naive port zeroes 512 entries once per base change (up to 4x per site).
  const u64 sites = 100'000;
  const u64 words_per_site = 11;
  const u64 tagged_stores = sites * words_per_site;        // 1 store per word
  const u64 naive_stores = sites * 4 * 512 + tagged_stores;  // + re-zeroing
  const device::PerfModel model;
  device::DeviceCounters tagged{}, naive{};
  tagged.global_store_bytes_random = tagged_stores * 4;
  naive.global_store_bytes_random = tagged_stores * 4;
  naive.global_store_bytes_coalesced = sites * 4 * 512 * 4;
  std::printf("    stores: tagged %llu vs naive %llu (%.0fx); modeled time "
              "%.4fs vs %.4fs\n",
              static_cast<unsigned long long>(tagged_stores),
              static_cast<unsigned long long>(naive_stores),
              static_cast<double>(naive_stores) / tagged_stores,
              model.seconds(tagged), model.seconds(naive));
}

}  // namespace

int main() {
  print_banner("bench_ablation_extras",
               "ablations for DESIGN.md design choices (not paper figures)",
               "");
  ablation_key_encoding();
  ablation_dict_width();
  ablation_access_pattern();
  ablation_dep_count();
  ablation_class_bounds();
  return 0;
}
