// Reproduces paper Table II: characteristics of the human Chromosome 1 and
// 21 datasets — #sites, sequencing depth, #reads, coverage ratio, input size,
// and (SOAPsnp text) output size.

#include <cstdio>

#include "bench_util.hpp"
#include "src/core/consistency.hpp"
#include "src/core/output_codec.hpp"

using namespace gsnp;
using namespace gsnp::bench;

int main(int argc, char** argv) {
  const u64 chr1_sites = flag_u64(argc, argv, "--chr1-sites", 100'000);
  print_banner("bench_table2_datasets",
               "Table II: human chromosome 1 and 21 dataset characteristics",
               "");
  const fs::path dir = bench_dir("table2");

  std::printf("%-6s %10s %7s %9s %9s %11s %11s\n", "", "#sites", "Seq.dep",
              "#reads", "Coverage", "Input(B)", "Output(B)");

  for (const auto& spec : {ch1_spec(chr1_sites), ch21_spec(chr1_sites)}) {
    const Dataset data = make_dataset(spec, dir);

    // Output size = the SOAPsnp text output for the same rows; GSNP_CPU is
    // the fastest engine that produces them.
    auto config = config_for(data, dir, "t2");
    config.window_size = 65'536;
    core::run_gsnp_cpu(config);
    std::string seq_name;
    const auto rows = core::read_snp_output(config.output_file, seq_name);
    u64 text_bytes = 0;
    for (const auto& row : rows)
      text_bytes += core::format_snp_row(seq_name, row).size() + 1;

    std::printf("%-6s %10llu %6.1fX %9llu %8.0f%% %11llu %11llu\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(data.ref.size()),
                data.stats.depth,
                static_cast<unsigned long long>(data.num_reads),
                100.0 * data.stats.coverage,
                static_cast<unsigned long long>(data.align_bytes),
                static_cast<unsigned long long>(text_bytes));
  }
  print_paper_note("Ch.1: 247M sites, 11X, 44M reads, 88%, 12GB in, 17GB out; "
                   "Ch.21: 47M sites, 9.6X, 6M reads, 68%, 2GB in, 3GB out");
  print_paper_note("Output/input byte ratio should be ~1.4-1.5x (output is "
                   "'around 50% larger').");
  return 0;
}
