// Reproduces paper Fig 4(b): the sparsity of base_occ — percentage of sites
// (vertical axis) with a given number of non-zero elements (horizontal).
//
// Expected shape: most sites hold only tens of non-zeros out of 131,072
// cells (<= ~0.08% at typical depth); a visible mass sits at zero
// (uncovered sites), larger for Ch.21.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "src/core/base_occ.hpp"
#include "src/core/window.hpp"
#include "src/reads/alignment.hpp"

using namespace gsnp;
using namespace gsnp::bench;

int main(int argc, char** argv) {
  const u64 chr1_sites = flag_u64(argc, argv, "--chr1-sites", 150'000);
  print_banner("bench_fig4b_sparsity",
               "Fig 4(b): percentage of sites vs #non-zero elements in the "
               "base_occ matrix",
               "");
  const fs::path dir = bench_dir("fig4b");

  for (const auto& spec : {ch1_spec(chr1_sites), ch21_spec(chr1_sites)}) {
    const Dataset data = make_dataset(spec, dir);

    // Count per-site non-zero cells (== unique-hit aligned bases with
    // distinct (base,score,coord,strand); approximated by the base_word
    // count, which the paper notes is "close to" the non-zero count).
    auto reader = std::make_shared<reads::AlignmentReader>(data.align_file);
    core::WindowLoader loader([reader] { return reader->next(); },
                              data.ref.size(), 65'536);
    std::vector<u64> histogram;  // bucketed by count
    core::WindowRecords win;
    core::WindowObs obs;
    std::vector<core::SiteStats> stats;
    core::BaseWordWindow sparse(0);
    u64 max_nnz = 0;
    while (loader.next(win)) {
      core::count_window(win, obs, stats, nullptr, &sparse);
      for (u32 s = 0; s < win.size; ++s) {
        const u64 nnz = sparse.size_of(s);
        max_nnz = std::max(max_nnz, nnz);
        if (histogram.size() <= nnz) histogram.resize(nnz + 1, 0);
        ++histogram[nnz];
      }
    }

    std::printf("\n%s (%llu sites, depth %.1fX):\n", spec.name.c_str(),
                static_cast<unsigned long long>(data.ref.size()),
                data.stats.depth);
    std::printf("%10s %10s %12s\n", "#non-zero", "%sites", "cumulative%");
    double cumulative = 0.0;
    const double total = static_cast<double>(data.ref.size());
    // Buckets like the paper's axis: 0, 1-10, 11-20, ... 71+.
    const u64 bucket_width = 10;
    for (u64 lo = 0; lo <= max_nnz;) {
      const u64 hi = lo == 0 ? 0 : lo + bucket_width - 1;
      u64 count = 0;
      for (u64 v = lo; v <= std::min(hi, max_nnz); ++v)
        count += v < histogram.size() ? histogram[v] : 0;
      const double pct = 100.0 * static_cast<double>(count) / total;
      cumulative += pct;
      if (lo == 0)
        std::printf("%10s %9.1f%% %11.1f%%\n", "0", pct, cumulative);
      else
        std::printf("%4llu-%-5llu %9.1f%% %11.1f%%\n",
                    static_cast<unsigned long long>(lo),
                    static_cast<unsigned long long>(hi), pct, cumulative);
      lo = lo == 0 ? 1 : lo + bucket_width;
    }
    std::printf("max non-zero: %llu of %llu cells -> peak density %.4f%%\n",
                static_cast<unsigned long long>(max_nnz),
                static_cast<unsigned long long>(core::kBaseOccPerSite),
                100.0 * static_cast<double>(max_nnz) /
                    static_cast<double>(core::kBaseOccPerSite));
  }
  print_paper_note("most sites have only tens of non-zeros -> <= ~0.08% of "
                   "the 131,072-cell matrix; ~30% of Ch.21 sites have none");
  return 0;
}
