// bench_overlap — the stream-overlap benchmark (plain harness, like
// bench_smoke: no google-benchmark dependency, deterministic, self-checking).
//
// Runs the GSNP engine over the same multi-window dataset serially
// (--streams 1) and overlapped (--streams 2 and 4) and reports the modeled
// device wall seconds each way.  The overlapped wall replays the stream
// timelines with event dependencies — concurrent streams are charged
// max(compute, transfer) instead of the serial sum — so with at least two
// windows the output/compression stream hides behind the compute stream and
// the overlapped wall must be *strictly* below the serial wall.  The harness
// also re-verifies the bit-exactness contract: identical output bytes and
// identical device counters across all stream counts.
//
//   bench_overlap [--workdir DIR] [--sites N] [--window N] [--depth X]
//
// Exit codes: 0 ok, 1 a check failed (no overlap win or output mismatch).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/engine.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/alignment.hpp"
#include "src/reads/simulator.hpp"

namespace fs = std::filesystem;
using namespace gsnp;

namespace {

std::string read_file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  GSNP_CHECK_MSG(in.good(), "cannot open " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct RunResult {
  core::RunReport report;
  std::string output_bytes;
  device::DeviceCounters counters;
};

RunResult run_once(const fs::path& workdir, const genome::Reference& ref,
                   const fs::path& align, u32 window, u32 streams) {
  core::EngineConfig config;
  config.alignment_file = align;
  config.reference = &ref;
  const std::string tag = "s" + std::to_string(streams);
  config.output_file = workdir / ("out_" + tag + ".snp");
  config.temp_file = workdir / ("tmp_" + tag + ".bin");
  config.window_size = window;
  config.streams = streams;

  device::Device dev;  // fresh device per run: counters start at zero
  RunResult r;
  r.report = core::run_gsnp(config, dev);
  r.output_bytes = read_file_bytes(config.output_file);
  r.counters = dev.counters();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path workdir = fs::temp_directory_path() / "gsnp_bench_overlap";
  u64 sites = 60'000;
  u32 window = 8'192;
  double depth = 6.0;
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_overlap: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--workdir") == 0) workdir = need_value("--workdir");
    else if (std::strcmp(argv[i], "--sites") == 0)
      sites = std::stoull(need_value("--sites"));
    else if (std::strcmp(argv[i], "--window") == 0)
      window = static_cast<u32>(std::stoul(need_value("--window")));
    else if (std::strcmp(argv[i], "--depth") == 0)
      depth = std::stod(need_value("--depth"));
    else {
      std::fprintf(stderr,
                   "usage: bench_overlap [--workdir DIR] [--sites N] "
                   "[--window N] [--depth X]\n");
      return 2;
    }
  }

  try {
    fs::create_directories(workdir);

    genome::GenomeSpec gspec;
    gspec.name = "chrO";
    gspec.length = sites;
    gspec.seed = 404;
    const genome::Reference ref = genome::generate_reference(gspec);
    genome::SnpPlantSpec pspec;
    pspec.seed = gspec.seed + 1;
    const genome::Diploid individual(ref, plant_snps(ref, pspec));
    reads::ReadSimSpec rspec;
    rspec.depth = depth;
    rspec.seed = gspec.seed + 2;
    const fs::path align = workdir / "align.soap";
    reads::write_alignment_file(align,
                                reads::simulate_reads(individual, rspec));

    const RunResult serial = run_once(workdir, ref, align, window, 1);
    GSNP_CHECK_MSG(serial.report.windows >= 2,
                   "dataset too small: need >= 2 windows for overlap, got "
                       << serial.report.windows
                       << " (raise --sites or lower --window)");

    std::printf("%-10s %8s %12s %12s %8s\n", "config", "windows",
                "modeled_wall", "serial_wall", "speedup");
    std::printf("%-10s %8llu %12.6f %12.6f %8s\n", "streams=1",
                static_cast<unsigned long long>(serial.report.windows),
                serial.report.modeled_wall_seconds,
                serial.report.modeled_serial_seconds, "1.00x");

    int failures = 0;
    for (const u32 n : {u32{2}, u32{4}}) {
      const RunResult over = run_once(workdir, ref, align, window, n);
      const double wall = over.report.modeled_wall_seconds;
      const double base = serial.report.modeled_serial_seconds;
      std::printf("%-10s %8llu %12.6f %12.6f %7.2fx\n",
                  ("streams=" + std::to_string(n)).c_str(),
                  static_cast<unsigned long long>(over.report.windows), wall,
                  over.report.modeled_serial_seconds,
                  wall > 0.0 ? base / wall : 0.0);

      if (over.output_bytes != serial.output_bytes) {
        std::fprintf(stderr,
                     "FAIL: streams=%u output differs from serial "
                     "(%zu vs %zu bytes)\n",
                     n, over.output_bytes.size(), serial.output_bytes.size());
        failures++;
      }
      if (std::memcmp(&over.counters, &serial.counters,
                      sizeof(device::DeviceCounters)) != 0) {
        std::fprintf(stderr,
                     "FAIL: streams=%u device counters differ from serial\n",
                     n);
        failures++;
      }
      // Counters identical => modeled serial seconds identical; the
      // overlapped wall must then be strictly better, not merely equal.
      if (!(wall < base)) {
        std::fprintf(stderr,
                     "FAIL: streams=%u modeled wall %.9f not strictly below "
                     "serial %.9f\n",
                     n, wall, base);
        failures++;
      }
    }

    if (failures > 0) {
      std::fprintf(stderr, "bench_overlap: %d check(s) failed\n", failures);
      return 1;
    }
    std::printf("bench_overlap OK: overlapped wall strictly below serial, "
                "outputs and counters bit-identical\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_overlap: %s\n", e.what());
    return 1;
  }
}
