// Reproduces paper Table IV: time breakdown (sec) of GSNP per component and
// the speedup of each component relative to SOAPsnp (Table I) on the same
// datasets.
//
// Expected shape: likelihood and recycle accelerated by orders of magnitude;
// output improved ~13-15x by compression; cal_p slightly slowed by temporary
// file generation but cal_p + read together net positive; overall speedup
// large (paper: 42-50x; see EXPERIMENTS.md for why this scaled-down, modern-
// host reproduction lands lower).

#include <cstdio>

#include "bench_util.hpp"

using namespace gsnp;
using namespace gsnp::bench;

int main(int argc, char** argv) {
  const u64 chr1_sites = flag_u64(argc, argv, "--chr1-sites", 100'000);
  print_banner("bench_table4_gsnp_breakdown",
               "Table IV: GSNP time breakdown and speedup vs SOAPsnp",
               "GSNP device components are modeled M2050 seconds from "
               "measured operation counts; host components are wall-clock.");
  const fs::path dir = bench_dir("table4");

  std::printf("%-6s %-9s %9s %9s %9s %9s %9s %9s %9s %9s\n", "", "", "cal_p",
              "read", "count", "likeli", "post", "output", "recycle", "Total");

  for (const auto& spec : {ch1_spec(chr1_sites), ch21_spec(chr1_sites)}) {
    const Dataset data = make_dataset(spec, dir);

    auto soapsnp_config = config_for(data, dir, "soapsnp");
    soapsnp_config.window_size = 4'000;
    const auto soapsnp = core::run_soapsnp(soapsnp_config);

    device::Device dev;
    auto gsnp_config = config_for(data, dir, "gsnp");
    gsnp_config.window_size = 65'536;
    const auto gsnp = core::run_gsnp(gsnp_config, dev);

    std::printf("%-6s %-9s", spec.name.c_str(), "SOAPsnp");
    for (const char* c : core::kComponents)
      std::printf(" %9.2f", soapsnp.component(c));
    std::printf(" %9.2f\n", soapsnp.total());

    std::printf("%-6s %-9s", spec.name.c_str(), "GSNP");
    for (const char* c : core::kComponents)
      std::printf(" %9.3f", gsnp.component(c));
    std::printf(" %9.3f\n", gsnp.total());

    std::printf("%-6s %-9s", spec.name.c_str(), "speedup");
    for (const char* c : core::kComponents) {
      const double g = gsnp.component(c);
      if (g < 1e-6)
        std::printf(" %8s ", ">1000x");
      else
        std::printf(" %8.1fx", soapsnp.component(c) / g);
    }
    std::printf(" %8.1fx\n", soapsnp.total() / gsnp.total());

    std::printf("  likeli split: sort %.4fs, comp %.4fs (modeled); output "
                "%llu B vs %llu B text\n",
                gsnp.device_modeled.get("likeli_sort"),
                gsnp.device_modeled.get("likeli_comp"),
                static_cast<unsigned long long>(gsnp.output_bytes),
                static_cast<unsigned long long>(soapsnp.output_bytes));
  }
  print_paper_note("paper Ch.1 GSNP: 297 20(5) 87(4) 60(204) 16(7) 44(13) "
                   "3(2738) | total 527 (42x); Ch.21 total 73 (50x)");
  print_paper_note("Ch.21's higher speedup comes from ~30% zero-coverage "
                   "sites, which the sparse representation skips entirely");
  return 0;
}
