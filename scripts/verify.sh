#!/usr/bin/env bash
# Full verification: tier-1 build + tests, then the robustness suite under
# AddressSanitizer + UBSan (GSNP_SANITIZE=ON skips bench/, whose library is
# not sanitizer-instrumented).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure

echo "== sanitizers: ASan+UBSan build, robustness + device + pipeline + fuzz =="
cmake -B build-asan -S . -DGSNP_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j >/dev/null
ctest --test-dir build-asan --output-on-failure -R 'robustness|device|pipeline|fuzz|sam'

echo "verify: all green"
