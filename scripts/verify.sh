#!/usr/bin/env bash
# Full verification: tier-1 build + tests, the robustness + service suites
# under AddressSanitizer + UBSan, the storage/network chaos suites (fs-fault
# matrix, fsck corpus, socket chaos) under both sanitizers, the
# stream-overlap harness, the gsnpd chaos smoke (bench_service --fs-faults)
# under both sanitizers, and the determinism/concurrency suites under
# ThreadSanitizer (sanitizer builds skip only the google-benchmark binaries,
# whose library is not sanitizer-instrumented).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure

# The backend bit-exactness contract at both ends of the dispatch ladder:
# the tier-1 pass above ran the determinism battery (backend matrix
# included) at the host's best SIMD level; this second pass forces every
# gsnp-simd run down to the scalar kernels, so a vectorization bug cannot
# hide behind "scalar was the level that happened to run" (or vice versa).
echo "== determinism x2: battery again with GSNP_FORCE_SCALAR=1 =="
if ! grep -q avx2 /proc/cpuinfo 2>/dev/null; then
  echo "==============================================================="
  echo "WARNING: this host has no AVX2 — the default-dispatch determinism"
  echo "pass above only covered the SSE2/scalar kernels.  Run verify.sh on"
  echo "an AVX2-capable machine before trusting the gsnp-simd backend."
  echo "==============================================================="
fi
GSNP_FORCE_SCALAR=1 ctest --test-dir build --output-on-failure -R determinism

echo "== bench_smoke: baseline harness emits schema-valid BENCH_pipeline.json =="
cmake --build build -j --target bench_smoke >/dev/null
./build/bench/bench_smoke --out build/BENCH_pipeline.json \
                          --workdir build/bench_smoke_work >/dev/null
[ -s build/BENCH_pipeline.json ] || { echo "BENCH_pipeline.json missing"; exit 1; }
./build/bench/bench_smoke --validate build/BENCH_pipeline.json

echo "== perf sentinel: fresh bench vs committed baseline (+ history append) =="
scripts/bench_report --check

echo "== telemetry: gsnpd Prometheus exposition lints against the inventory =="
cmake --build build -j --target gsnp_cli >/dev/null
./build/examples/gsnp_cli metrics --demo --workdir build/metrics_demo \
    > build/metrics_demo.txt
python3 scripts/check_metrics.py build/metrics_demo.txt \
    scripts/metrics_inventory.txt

echo "== profiler: per-kernel profile is schema-valid and sums exactly =="
cmake --build build -j --target gsnp_cli >/dev/null
./build/examples/gsnp_cli simulate --out build/profile_sim --sites 20000 \
                                   --depth 6 --seed 7 >/dev/null
./build/examples/gsnp_cli profile --ref build/profile_sim/ref.fa \
                                  --align build/profile_sim/align.soap \
                                  --out build/profile_sim/out.snp \
                                  --profile-out build/profile_sim/profile.json \
                                  >/dev/null
./build/examples/gsnp_cli profile --validate build/profile_sim/profile.json

# Short gsnpd chaos smoke under a sanitizer build: concurrent jobs, seeded
# faults, a mid-run daemon kill/restart, typed shedding, and (--fs-faults)
# the storage-chaos rounds — transient container tears absorbed byte-
# identically, persistent journal ENOSPC rejected typed, fsck clean after.
# 8 jobs is the contract floor; the small --length keeps sanitized runs
# quick.
run_service_chaos_smoke() {
  local builddir="$1"
  if [ ! -x "${builddir}/bench/bench_service" ]; then
    echo "==============================================================="
    echo "bench_service: SKIPPED — ${builddir}/bench/bench_service missing."
    echo "The harness should build under sanitizers (bench/CMakeLists.txt"
    echo "gates only the google-benchmark targets); investigate."
    echo "==============================================================="
    return 0
  fi
  "${builddir}/bench/bench_service" --jobs 8 --length 500 --fs-faults \
      --workdir "${builddir}/bench_service_work"
}

echo "== sanitizers: ASan+UBSan build, robustness + device + pipeline + fuzz + service =="
cmake -B build-asan -S . -DGSNP_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j >/dev/null
ctest --test-dir build-asan --output-on-failure -R 'robustness|device|pipeline|fuzz|sam|test_service|histogram|eventlog|batcher'

echo "== storage/network chaos under ASan: fault matrix, fsck corpus, socket chaos =="
ctest --test-dir build-asan --output-on-failure -R 'fsfault|fsck|chaos'

echo "== service chaos smoke under ASan: crash/recover byte-identical, typed shedding =="
run_service_chaos_smoke build-asan

echo "== overlap: serial vs streamed runs are bit-identical, wall strictly lower =="
cmake --build build -j --target bench_overlap >/dev/null
./build/bench/bench_overlap --workdir build/bench_overlap_work

echo "== TSan: determinism battery + obs/profiler/device under ThreadSanitizer =="
# GSNP_OPENMP=OFF: libgomp is not TSan-instrumented and trips false
# positives on its internal barriers; the thread-pool/stream machinery is
# what this stage is after.
cmake -B build-tsan -S . -DGSNP_SANITIZE=thread -DGSNP_OPENMP=OFF \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j >/dev/null
ctest --test-dir build-tsan --output-on-failure \
      -R 'determinism|test_obs|profiler|device|test_service|histogram|eventlog|batcher'

echo "== storage/network chaos under TSan: injector + spool + socket thread-safety =="
ctest --test-dir build-tsan --output-on-failure -R 'fsfault|fsck|chaos'

echo "== service chaos smoke under TSan: worker pool + watchdog + journal races =="
run_service_chaos_smoke build-tsan

echo "verify: all green"
