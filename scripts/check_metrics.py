#!/usr/bin/env python3
"""Lint a gsnpd Prometheus text exposition against the committed inventory.

Usage: check_metrics.py EXPOSITION_FILE INVENTORY_FILE [--prefix gsnpd_]

Checks (FORMATS.md §14):
  * every line is a comment, a `# TYPE <name> <counter|gauge|histogram>`
    declaration, or a `<name>[{labels}] <value>` sample;
  * metric names match [a-zA-Z_][a-zA-Z0-9_]* and carry the expected prefix;
  * every sample's family has a TYPE line, declared BEFORE the first sample;
  * counter families end in _total and hold non-negative integers;
  * histogram families expose _bucket/_sum/_count; per label-set the
    cumulative buckets are monotone non-decreasing in increasing `le` order,
    end with le="+Inf", and the +Inf bucket equals the _count sample;
  * no duplicate (name, labels) sample;
  * every family's base name appears in the inventory, and every
    `!`-required inventory name is present in the exposition.

Exit code 0 when clean, 1 with one message per violation otherwise.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_][a-zA-Z0-9_]*)(\{.*\})?\s+(\S+)$")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_][a-zA-Z0-9_]*) (\S+)$")
HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_labels(block):
    """'{a="x",le="0.5"}' -> dict; labels never contain commas/quotes in
    values except through escapes, which gsnpd only emits for tenant names."""
    if not block:
        return {}
    body = block[1:-1]
    labels = {}
    for m in re.finditer(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"', body):
        labels[m.group(1)] = m.group(2)
    return labels


def le_key(value):
    return float("inf") if value == "+Inf" else float(value)


def main(argv):
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    exposition_path, inventory_path = argv[1], argv[2]
    prefix = "gsnpd_"
    if len(argv) >= 5 and argv[3] == "--prefix":
        prefix = argv[4]

    allowed, required = set(), set()
    with open(inventory_path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name = line.lstrip("!")
            allowed.add(name)
            if line.startswith("!"):
                required.add(name)

    errors = []
    types = {}          # family -> counter|gauge|histogram
    seen_samples = set()  # (name, labels-text) duplicates
    seen_families = set()
    # histogram family -> label-set-key -> list of (le, count) in file order
    hist_buckets = {}
    hist_counts = {}    # histogram family -> label-set-key -> _count value

    def err(lineno, msg):
        errors.append("line %d: %s" % (lineno, msg))

    with open(exposition_path) as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("#"):
                m = TYPE_RE.match(line)
                if m:
                    name, kind = m.groups()
                    if kind not in ("counter", "gauge", "histogram"):
                        err(lineno, "unknown metric type %r" % kind)
                    if name in types:
                        err(lineno, "duplicate TYPE line for %s" % name)
                    if kind == "counter" and not name.endswith("_total"):
                        err(lineno, "counter %s must end in _total" % name)
                    types[name] = kind
                continue
            m = SAMPLE_RE.match(line)
            if m is None:
                err(lineno, "unparseable sample line: %r" % line)
                continue
            name, label_block, value_text = m.groups()
            if not NAME_RE.match(name):
                err(lineno, "bad metric name %r" % name)
            if not name.startswith(prefix):
                err(lineno, "metric %s missing prefix %r" % (name, prefix))
            try:
                value = float(value_text)
            except ValueError:
                err(lineno, "non-numeric value %r for %s" % (value_text, name))
                continue

            key = (name, label_block or "")
            if key in seen_samples:
                err(lineno, "duplicate sample %s%s" % (name, label_block or ""))
            seen_samples.add(key)

            # Resolve the owning family: exact for counters/gauges, suffix-
            # stripped for histogram series.
            family = None
            if name in types and types[name] != "histogram":
                family = name
            else:
                for suffix in HIST_SUFFIXES:
                    base = name[: -len(suffix)] if name.endswith(suffix) else None
                    if base and types.get(base) == "histogram":
                        family = base
                        break
                if family is None and name in types:
                    family = name  # a histogram family sampled bare: flagged next
            if family is None:
                err(lineno, "sample %s has no TYPE declaration above it" % name)
                continue
            seen_families.add(family)

            labels = parse_labels(label_block or "")
            if types[family] == "counter":
                if value < 0 or value != int(value):
                    err(lineno,
                        "counter %s value %s is not a non-negative integer"
                        % (name, value_text))
            elif types[family] == "histogram":
                series = frozenset(
                    (k, v) for k, v in labels.items() if k != "le")
                if name.endswith("_bucket"):
                    if "le" not in labels:
                        err(lineno, "bucket sample %s lacks an le label" % name)
                    else:
                        hist_buckets.setdefault(family, {}).setdefault(
                            series, []).append((lineno, labels["le"], value))
                elif name.endswith("_count"):
                    hist_counts.setdefault(family, {})[series] = (lineno, value)
                elif not name.endswith("_sum"):
                    err(lineno,
                        "histogram family %s sampled without a "
                        "_bucket/_sum/_count suffix" % family)

    # Cross-sample histogram checks.
    for family, by_series in sorted(hist_buckets.items()):
        for series, buckets in sorted(by_series.items()):
            prev_le, prev_n = None, -1.0
            for lineno, le_text, n in buckets:
                le = le_key(le_text)
                if prev_le is not None and le <= prev_le:
                    err(lineno, "%s buckets not in increasing le order" % family)
                if n < prev_n:
                    err(lineno,
                        "%s cumulative bucket %s dropped below the previous "
                        "bucket" % (family, le_text))
                prev_le, prev_n = le, n
            if buckets[-1][1] != "+Inf":
                err(buckets[-1][0], "%s bucket list must end at le=\"+Inf\""
                    % family)
            count = hist_counts.get(family, {}).get(series)
            if count is None:
                err(buckets[-1][0], "%s has buckets but no _count" % family)
            elif buckets[-1][1] == "+Inf" and count[1] != buckets[-1][2]:
                err(count[0],
                    "%s +Inf bucket %g != _count %g"
                    % (family, buckets[-1][2], count[1]))

    # Inventory: every exposed family allowed; every required family present.
    exposed_bases = set()
    for family in seen_families:
        base = family[len(prefix):] if family.startswith(prefix) else family
        if types.get(family) == "counter" and base.endswith("_total"):
            base = base[: -len("_total")]
        exposed_bases.add(base)
        if base not in allowed:
            errors.append(
                "family %s (base %r) is not in the inventory %s"
                % (family, base, inventory_path))
    for base in sorted(required - exposed_bases):
        errors.append("required family %r missing from the exposition" % base)

    if errors:
        for e in errors:
            sys.stderr.write("check_metrics: %s\n" % e)
        sys.stderr.write("check_metrics: FAIL (%d error(s)) in %s\n"
                         % (len(errors), exposition_path))
        return 1
    print("check_metrics: OK — %d families, %d samples, inventory clean"
          % (len(seen_families), len(seen_samples)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
